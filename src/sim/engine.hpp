// VineSim: the simulated TaskVine runtime at cluster scale.
//
// Reproduces the execution dynamics the evaluation measures — manager
// dispatch throughput, shared-FS contention (L1), per-worker environment
// caching with spanning-tree distribution (L2/L3), resident libraries with
// one invocation slot each (L3, the paper's LNNI configuration, which is how
// Fig 10's ~2,400 libraries on 150 workers arise), co-located-invocation
// interference, optional worker churn, and machine heterogeneity — in
// virtual time on the DES kernel.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "core/scheduler.hpp"
#include "core/types.hpp"
#include "net/fault.hpp"
#include "sim/cluster.hpp"
#include "sim/cost_model.hpp"
#include "sim/des.hpp"
#include "sim/resources.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/timeseries.hpp"

namespace vinelet::sim {

/// One invocation to execute: a function class plus a per-invocation
/// execution-time multiplier (workload mixes pre-sample these).
struct InvocationSpec {
  const WorkloadCosts* costs = nullptr;
  double exec_scale = 1.0;
  /// Library the invocation targets (affinity scheduling mode).  The
  /// single-library workloads leave this 0; Zipf-popularity mixes spread
  /// it over many libraries so per-library affinity sets matter.
  std::size_t library = 0;
  /// Virtual submission time.  0 (the default) submits at t=0 — the closed
  /// batch every established workload uses, bit-identical to before the
  /// field existed.  A positive value turns the run into an open system:
  /// the invocation enters its queue at `arrival_s`, which is what makes
  /// warm-context retention measurable (a drained queue may refill, so
  /// evicting the wrong instance costs a future cold start).
  double arrival_s = 0;
  /// Result payload size this invocation produces for downstream consumers.
  /// 0 (the default) means no data-plane edge leaves this invocation —
  /// established workloads reproduce bit-identically.
  std::uint64_t produces_bytes = 0;
  /// DAG data edges: indices of producer invocations whose results this one
  /// consumes.  Before the function body runs the consumer pays the mirror
  /// of the runtime's argument materialization: a worker-to-worker fetch
  /// hop (SimConfig::ref_results) or a manager relay (by value).  Producers
  /// must complete before consumers are submitted (use arrival_s or keep
  /// the workload closed with producers first — the fluid model does not
  /// track future resolution, only data placement).
  std::vector<std::size_t> consumes;
};

/// One completed invocation's lifecycle, for offline analysis.
struct InvocationTrace {
  std::size_t invocation = 0;
  std::size_t worker = 0;
  std::size_t machine_group = 0;
  double dispatched = 0;  // manager committed the placement
  double started = 0;     // worker began processing (run time = finished-started)
  double finished = 0;
  int level = 0;          // reuse level of the run (1, 2 or 3)
  // Phase breakdown of the final attempt (Table 5's columns).
  double transfer_s = 0;  // shared-FS reads / env transfer wait
  double unpack_s = 0;    // env expansion + local staging reads
  double setup_s = 0;     // deserialize + context rebuild / setup
  double exec_s = 0;      // the function body
};

struct SimConfig {
  core::ReuseLevel level = core::ReuseLevel::kL3;
  ClusterConfig cluster;
  std::uint64_t seed = 42;

  /// Record (completed, active libraries) and share-value series (Figs 10/11).
  bool track_series = false;

  /// Record a per-invocation InvocationTrace (final attempt per invocation).
  bool track_trace = false;

  /// Mean worker lifetime under churn; 0 disables churn.  The paper's pool
  /// is HTCondor-managed, where eviction and replacement are routine.
  double worker_mean_lifetime_s = 0.0;
  double worker_respawn_delay_s = 15.0;

  /// Disable worker-to-worker context distribution (Fig 3a vs 3b).
  bool peer_transfers = true;

  /// Per-source concurrent env transfer cap N (§3.3).
  unsigned env_fanout = 3;

  /// Chunk size for pipelined (cut-through) env distribution: a replica
  /// begins serving peers as soon as its first chunk lands instead of after
  /// the whole tarball, so distribution makespan approaches
  /// blob_time + depth × chunk_time.  0 = whole-blob store-and-forward
  /// (the pre-pipelining behavior).  Only meaningful with peer_transfers.
  std::uint64_t env_chunk_bytes = 0;

  /// L3 only: invocation slots per library instance (§3.5.2).  The paper's
  /// LNNI deployment uses 1 (one library per slot, Fig 10's ~2,400
  /// instances); the alternative strategy is one whole-worker library with
  /// `slots` slots.  Context setup is paid once per instance, so larger
  /// libraries trade deployment cost against sharing granularity.
  std::uint32_t library_slots = 1;

  /// Fault schedule mirrored from the runtime harness: scheduled worker
  /// kills replay at their virtual-time stamps, and the per-worker
  /// setup/invocation/task failure and straggler rates draw from the same
  /// seeded per-worker streams as net::FaultInjector, so one (seed, plan)
  /// pair produces the same fault decisions in sim and runtime.  Worker ids
  /// in the plan are 1-based runtime endpoints; kill events naming workers
  /// beyond the cluster wrap modulo the worker count.  Link-level message
  /// faults (drop/dup/corrupt/delay) have no analogue here — the fluid
  /// model carries no individual messages.
  net::FaultPlan fault;

  /// Scheduling policy mirror.  Defaults to kFirstFit — the legacy
  /// round-robin dispatch — so established experiments (Fig 3/8 baselines)
  /// reproduce bit-identically.  kAffinity (L3 only) activates the same
  /// per-library affinity routing, threshold-gated stealing, and
  /// closed-loop autoscaler the live Manager runs, through the identical
  /// pure decision functions in core/scheduler.hpp.
  core::SchedulerConfig scheduler{core::SchedulerPolicy::kFirstFit};

  /// Pass-by-reference data-plane mirror.  false (by value, the default):
  /// every produced result crosses the manager uplink on retrieve and again
  /// inline in each consumer's arguments — the result bytes transit the
  /// manager twice per edge, exactly the relay the runtime's by-value mode
  /// pays.  true (by ref): the result stays pinned on the producer worker
  /// as a content-addressed replica; a consumer landing on a worker that
  /// holds a replica pays nothing, otherwise it fetches peer-to-peer over
  /// the worker link and the fetched copy becomes a replica too (the
  /// runtime's FileReady announcement).  Workloads with no produces_bytes /
  /// consumes edges are bit-identical under both settings.
  bool ref_results = false;

  /// Marginal manager cost of each invocation after the first inside one
  /// RunInvocationBatch dispatch, as a fraction of the per-message
  /// dispatch_s.  Calibrate against the batched-vs-unbatched encode pair in
  /// bench_micro_primitives; 1.0 disables the batching advantage.
  double batch_item_cost_factor = 0.25;

  /// Optional telemetry sink.  When its tracer is enabled the simulator
  /// emits the same phase spans as the real runtime (submit, dispatch,
  /// transfer, unpack, context-setup, deserialize, exec, result) stamped
  /// with virtual time — one exporter/breakdown code path for both
  /// backends.  The clock inside is never consulted.
  telemetry::Telemetry* telemetry = nullptr;

  /// Optional windowed time-series sink (requires `telemetry`).  When set,
  /// the simulator publishes the manager's completion metrics
  /// (manager.invocations_completed / invocation_roundtrip_s /
  /// libraries_active) into the shared registry and drives SampleAt at
  /// virtual-time window boundaries — the DES twin of the runtime's
  /// BackgroundSampler, emitting the identical JSON-lines schema.  Null
  /// (the default) leaves the registry untouched, so established runs
  /// reproduce their metrics files bit-identically.
  telemetry::TimeSeriesStore* timeseries = nullptr;
};

struct SimResult {
  double makespan = 0.0;
  std::uint64_t invocations_completed = 0;
  RunningStats run_time;           // worker-side run time per invocation
  std::vector<double> run_times;   // raw samples (histograms)

  std::uint64_t libraries_deployed_total = 0;  // cumulative (churn included)
  std::uint64_t libraries_peak_active = 0;
  std::uint64_t env_manager_transfers = 0;
  std::uint64_t env_peer_transfers = 0;
  /// Virtual time when the last env transfer completed: the distribution
  /// makespan the Fig-3 chunk-size sweeps compare against the analytic
  /// planner (transfer only — unpack is excluded on both sides).
  double env_last_transfer_done_s = 0.0;
  std::uint64_t worker_deaths = 0;
  std::uint64_t requeued_invocations = 0;
  double manager_utilization = 0.0;

  // Injected-fault counters from SimConfig::fault (subset of
  // net::FaultStats that applies to the fluid model).
  std::uint64_t injected_kills = 0;
  std::uint64_t injected_setup_failures = 0;
  std::uint64_t injected_invocation_failures = 0;
  std::uint64_t injected_task_failures = 0;
  std::uint64_t injected_stragglers = 0;

  // Affinity-scheduling mirror counters (kAffinity mode only).
  std::uint64_t affinity_hits = 0;    // invocations routed into a warm slot
  std::uint64_t affinity_misses = 0;  // deploys forced by a cold backlog
  std::uint64_t steals = 0;           // deploys onto non-affine workers
  std::uint64_t autoscale_deploys = 0;
  std::uint64_t autoscale_evicts = 0;
  std::uint64_t dispatch_batches = 0;  // batched dispatch messages sent
  std::uint64_t dispatch_batched_invocations = 0;
  std::uint64_t dispatch_max_batch = 0;

  // Pass-by-reference data-plane mirror counters (produces_bytes/consumes
  // workloads; all zero otherwise).
  std::uint64_t ref_results = 0;        // results retained as replicas
  std::uint64_t ref_local_hits = 0;     // consumer co-located with a replica
  std::uint64_t ref_p2p_fetches = 0;    // worker-to-worker payload fetches
  std::uint64_t ref_p2p_fetch_bytes = 0;
  /// Every replica of a consumed result was lost to churn before the fetch;
  /// the consumer re-materializes from the manager's cached copy (the
  /// runtime's FetchRef fallback path).
  std::uint64_t ref_manager_refetches = 0;
  /// Result bytes that transited the manager: by-value retrieves plus
  /// by-value consumer argument relays plus refetch fallbacks.  The ref
  /// data plane exists to drive this to ~0 for DAG edges.
  std::uint64_t manager_relayed_result_bytes = 0;

  TimeSeries active_libraries;  // x = invocations completed
  TimeSeries avg_share_value;   // x = invocations completed

  /// Per-invocation lifecycle records (when SimConfig::track_trace).
  std::vector<InvocationTrace> trace;
};

/// Renders traces as CSV ("invocation,worker,group,dispatched,started,
/// finished,run_time,level,transfer_s,unpack_s,setup_s,exec_s"), sorted by
/// completion time.  The first seven columns are stable; the reuse level
/// and phase columns were appended later.
std::string TraceToCsv(const std::vector<InvocationTrace>& trace);

class VineSim {
 public:
  VineSim(SimConfig config, std::vector<InvocationSpec> invocations);

  /// Runs to completion and returns the collected metrics.
  SimResult Run();

 private:
  struct SimWorker {
    SimWorkerNode node;
    std::uint32_t slots = 16;
    std::uint32_t free_slots = 16;
    std::uint32_t active = 0;  // invocations currently being processed
    enum class Env { kAbsent, kTransferring, kReady } env = Env::kAbsent;
    std::vector<std::function<void()>> env_waiters;
    // Env lifecycle stamps for span emission and wait attribution.
    double env_transfer_started_s = 0;
    double env_transfer_done_s = 0;
    double env_ready_s = 0;
    /// Causal context of this worker's env distribution: seeded from the
    /// invocation that triggered the transfer, advanced through the
    /// transfer and unpack spans.
    telemetry::TraceContext env_trace;
    std::unique_ptr<FairShareResource> disk;
    std::uint32_t libraries = 0;           // deployed instances (L3)
    std::uint32_t deploying = 0;           // instances mid-setup
    std::uint32_t library_free_slots = 0;  // deployed, currently idle slots
    std::vector<std::function<void()>> library_waiters;
    /// Per-library instance state (affinity mode; the anonymous aggregate
    /// counters above still track totals for capacity accounting).
    struct LibState {
      std::uint32_t instances = 0;   // ready instances of the library here
      std::uint32_t deploying = 0;   // instances mid-setup
      std::uint32_t free_slots = 0;  // idle slots across ready instances
      std::uint64_t served = 0;      // completions here (share value input)
    };
    std::map<std::size_t, LibState> libs;
    bool alive = true;
    std::uint64_t generation = 0;  // incremented on respawn
  };

  void PumpDispatch();
  void StartOnWorker(std::size_t worker_index, std::uint64_t generation,
                     std::size_t invocation);

  // --- pass-by-reference data-plane mirror ---
  /// Materializes invocation `invocation`'s consumed results onto the
  /// target worker, charging the same hops the runtime pays: nothing for a
  /// co-located replica, a worker-link fetch peer-to-peer, or a manager
  /// relay (by-value mode / all-replicas-lost fallback).  Calls `then`
  /// synchronously when the invocation consumes nothing, so workloads
  /// without data edges schedule bit-identically.
  void FetchRefArgs(std::size_t worker_index, std::uint64_t generation,
                    std::size_t invocation, std::function<void()> then);
  /// Producer side of the mirror, from FinishOnWorker: by ref the result is
  /// pinned where it was produced; by value its bytes cross the manager
  /// uplink before the retrieve is served.
  void RecordProducedResult(std::size_t worker_index, std::uint64_t generation,
                            std::size_t invocation,
                            std::function<void()> retrieve);

  // --- context-affinity scheduling mirror (core/scheduler.hpp policy) ---
  /// The per-library scheduling path runs for kAffinity, and also for
  /// kFirstFit whenever the workload names more than one library — the
  /// anonymous legacy path cannot tell libraries apart, and a first-fit
  /// baseline over a multi-library mix must still deploy per library.
  bool AffinityMode() const {
    if (config_.level != core::ReuseLevel::kL3) return false;
    return config_.scheduler.policy == core::SchedulerPolicy::kAffinity ||
           multi_library_;
  }
  /// Library key into the shared AffinityIndex (workers are 1-based there,
  /// matching runtime endpoint ids).
  static std::string LibKey(std::size_t lib) { return std::to_string(lib); }
  void PumpAffinity();
  /// Mirrors Manager::TryScheduleLibrary: drain the library's queue through
  /// warm slots, then close the loop via DecideAutoscale.  Returns true if
  /// any invocation was dispatched or capacity change was initiated.
  bool ScheduleLibraryAffinity(std::size_t lib);
  core::AutoscaleSignal BuildSimSignal(std::size_t lib) const;
  /// Pops up to min(queue, free slots, max_batch) invocations onto the
  /// chosen worker as one batched dispatch message.
  void DispatchBatchTo(std::size_t worker_index, std::size_t lib);
  void RunAffinityInvocation(std::size_t worker_index,
                             std::uint64_t generation,
                             std::size_t invocation, double started);
  bool TryDeploySim(std::size_t lib);
  bool TryEvictIdleSim(std::size_t for_lib);
  void RunL1(SimWorker& worker, std::size_t invocation, double started);
  void RunL2(SimWorker& worker, std::size_t invocation, double started);
  void RunL3(SimWorker& worker, std::size_t invocation, double started);
  /// L3 helpers: claim a library slot (or deploy/wait), then execute.
  void ServeL3(std::size_t worker_index, std::uint64_t generation,
               std::size_t invocation, double started);
  void RunL3Invocation(std::size_t worker_index, std::uint64_t generation,
                       std::size_t invocation, double started);
  void DrainLibraryWaiters(SimWorker& worker);

  // --- environment distribution (spanning tree, §3.3) ---
  /// `trace` is the requesting invocation's context; if this call starts
  /// the transfer, the env spans chain off it (first requester wins).
  void EnsureEnv(std::size_t worker_index, std::uint64_t generation,
                 telemetry::TraceContext trace, std::function<void()> ready);
  void RequestEnvTransfer(std::size_t worker_index);
  /// `source_done_s`: predicted completion of the serving replica's own
  /// inbound transfer (≤ now for whole-blob slots; in the future for
  /// cut-through slots released after the source's first chunk).
  void StartPeerEnvTransfer(std::size_t worker_index, double source_done_s);
  void OnEnvTransferDone(std::size_t worker_index, std::uint64_t generation,
                         bool from_manager);
  /// Releases `count` upload slots tagged with the holder's predicted
  /// completion time (`source_done_s`), serving queued workers first.
  void ReleaseEnvServingSlots(unsigned count, double source_done_s);
  /// Chunked mode only: schedules the release of the new replica's upload
  /// slots one chunk-time after its transfer starts (cut-through relay).
  void ScheduleEarlyServe(std::size_t worker_index, std::uint64_t generation,
                          double rate_Bps, double finish_s);
  bool ChunkedEnv() const {
    return config_.env_chunk_bytes > 0 && config_.peer_transfers;
  }

  /// Emits a span with explicit virtual timestamps as a child of `parent`
  /// and returns the new span's context (`parent` unchanged when tracing is
  /// off) — the simulator's analogue of the runtime's per-hop EmitLinked
  /// stitching, so both backends produce the same causal schema.
  telemetry::TraceContext TraceSpan(telemetry::TraceContext parent,
                                    telemetry::Phase phase,
                                    std::string_view category,
                                    std::string track, std::uint64_t id,
                                    double start_s, double end_s);
  /// Starts invocation `invocation`'s trace with its submit span — or,
  /// after a requeue, extends the existing trace so every attempt shares
  /// one trace_id.
  void TraceSubmit(std::size_t invocation, double popped_s);
  /// Adds the part of [wait_from, now] spent in `worker`'s env transfer and
  /// unpack windows to invocation `invocation`'s phase accumulators.
  void AccumEnvWait(std::size_t invocation, const SimWorker& worker,
                    double wait_from, double now);
  static int LevelNumber(core::ReuseLevel level);

  /// Interference multiplier from co-located invocations on this worker.
  double Contention(const SimWorker& worker, double beta) const;
  double ExecNoise(const WorkloadCosts& costs);
  void CpuPhase(const SimWorker& worker, double baseline_seconds,
                std::function<void()> done);
  void CompleteOnWorker(std::size_t worker_index, std::uint64_t generation,
                        std::size_t invocation, double started);
  /// Completion after the straggler hook; applies the injected
  /// task/invocation failure rate before recording the result.
  void FinishOnWorker(std::size_t worker_index, std::uint64_t generation,
                      std::size_t invocation, double started);
  void Requeue(std::size_t invocation);
  /// Virtual-time sampling chain for SimConfig::timeseries: one SampleAt
  /// per window, rescheduled while invocations remain (the chain must not
  /// outlive the workload or the event queue never drains).
  void ScheduleSampling();
  void ScheduleDeath(std::size_t worker_index);
  /// Immediate abrupt death + scheduled respawn; shared by churn and the
  /// fault plan's kill schedule.
  void KillWorkerNow(std::size_t worker_index);
  bool WorkerValid(std::size_t worker_index, std::uint64_t generation) const;

  SimConfig config_;
  std::vector<InvocationSpec> invocations_;
  Rng rng_;
  /// Same decision streams as the runtime's injector: per-worker keyed by
  /// 1-based endpoint id, so sim worker index w maps to endpoint w + 1.
  net::FaultInjector fault_;

  Simulation sim_;
  std::unique_ptr<FairShareResource> sharedfs_bw_;
  std::unique_ptr<IopsBucket> sharedfs_iops_;
  std::unique_ptr<FairShareResource> manager_uplink_;
  std::unique_ptr<SerialServer> manager_;

  std::vector<SimWorker> workers_;
  std::deque<std::size_t> pending_;  // invocation indices awaiting dispatch
  /// Affinity mode: per-library FIFO queues (mirrors the manager's
  /// per-library PendingCall queues).
  std::map<std::size_t, std::deque<std::size_t>> lib_pending_;
  core::AffinityIndex affinity_;
  bool multi_library_ = false;  // any InvocationSpec names library != 0
  std::size_t rr_cursor_ = 0;
  bool done_ = false;  // all invocations completed: stop churn chains

  // Environment spanning-tree state.
  unsigned env_manager_seeds_inflight_ = 0;
  /// Free upload slots on replica holders; each entry carries the holder's
  /// predicted transfer-completion time (cut-through pacing).  Whole-blob
  /// slots are tagged with their release time.
  std::deque<double> env_serving_slots_;
  std::deque<std::size_t> env_transfer_queue_;  // workers awaiting a source

  /// Replica locations of each producer invocation's result (ref mode):
  /// the producing worker plus every consumer that fetched a copy, each
  /// tagged with the generation it was alive in (a respawned worker lost
  /// its disk).  Keyed by producer invocation index — the fluid model's
  /// stand-in for the runtime's content-addressed ReplicaTable.
  struct RefHolder {
    std::size_t worker = 0;
    std::uint64_t generation = 0;
  };
  std::map<std::size_t, std::vector<RefHolder>> ref_holders_;

  std::uint64_t active_libraries_ = 0;
  std::vector<double> dispatch_times_;  // per invocation, when track_trace
  /// Per-invocation phase accumulators; reset on requeue so the trace row
  /// describes the final (successful) attempt.
  struct PhaseAccum {
    double transfer_s = 0;
    double unpack_s = 0;
    double setup_s = 0;
    double exec_s = 0;
  };
  std::vector<PhaseAccum> phases_;
  std::vector<double> queued_at_;  // per invocation, last (re)submit time
  /// Per-invocation causal context, advanced at every lifecycle span; one
  /// trace_id per invocation from submit through result, requeues included.
  std::vector<telemetry::TraceContext> trace_ctx_;
  /// Cached registry handles for SimConfig::timeseries (null when off).
  telemetry::Counter* ts_invocations_ = nullptr;
  telemetry::Histogram* ts_roundtrip_ = nullptr;
  telemetry::Gauge* ts_libraries_ = nullptr;
  SimResult result_;
};

}  // namespace vinelet::sim
