// Workload generators for the evaluation applications.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace vinelet::sim {

/// LNNI (§4.1.1): `n` identical inference invocations over one function
/// class (the per-invocation spread comes from machine heterogeneity and
/// the engine's interference noise, as in Fig 7).
std::vector<InvocationSpec> BuildLnniWorkload(const WorkloadCosts& costs,
                                              std::size_t n);

/// ExaMol (§4.1.2): a ~10k-task active-learning mixture.  Simulation tasks
/// dominate (data gathering), periodically interleaved with surrogate
/// retraining and batch inference, with heavy-tailed per-molecule cost.
/// The three cost structs must outlive the returned specs.
std::vector<InvocationSpec> BuildExamolWorkload(
    const WorkloadCosts& simulate, const WorkloadCosts& train,
    const WorkloadCosts& infer, std::size_t n, Rng& rng);

}  // namespace vinelet::sim
