// Workload generators for the evaluation applications.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace vinelet::sim {

/// LNNI (§4.1.1): `n` identical inference invocations over one function
/// class (the per-invocation spread comes from machine heterogeneity and
/// the engine's interference noise, as in Fig 7).
std::vector<InvocationSpec> BuildLnniWorkload(const WorkloadCosts& costs,
                                              std::size_t n);

/// Zipf-popularity mix: `n` invocations of one function class spread over
/// `num_libraries` libraries with popularity ~ 1/rank^s (library 0 most
/// popular).  Exercises the context-affinity scheduler: the head libraries
/// justify several warm instances while the tail should consolidate rather
/// than displace them.  Per-invocation cost spread comes from a unit-mean
/// lognormal with `exec_sigma`.  `arrival_rate` > 0 makes the mix an open
/// Poisson stream at that many invocations/s (retention now matters: a
/// drained library refills later); 0 keeps the closed all-at-t=0 batch.
std::vector<InvocationSpec> BuildZipfWorkload(const WorkloadCosts& costs,
                                              std::size_t n,
                                              std::size_t num_libraries,
                                              double s, double exec_sigma,
                                              double arrival_rate, Rng& rng);

/// ExaMol (§4.1.2): a ~10k-task active-learning mixture.  Simulation tasks
/// dominate (data gathering), periodically interleaved with surrogate
/// retraining and batch inference, with heavy-tailed per-molecule cost.
/// The three cost structs must outlive the returned specs.
std::vector<InvocationSpec> BuildExamolWorkload(
    const WorkloadCosts& simulate, const WorkloadCosts& train,
    const WorkloadCosts& infer, std::size_t n, Rng& rng);

}  // namespace vinelet::sim
