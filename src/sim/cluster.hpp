// Cluster model: the paper's heterogeneous HTCondor pool (Table 3).
//
// Five machine groups with different CPU throughput (GFlops) and DRAM; all
// have SATA SSDs and 10 Gb Ethernet.  A simulated run samples its workers
// from the groups in the same proportion as the paper ("all experiments are
// run with a similar proportion of machine groups"), and each worker's CPU
// phases scale by its group's speed factor — this heterogeneity is what
// spreads the L3 run-time histogram (Fig 7c / Table 4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace vinelet::sim {

struct MachineGroup {
  std::string name;
  std::string cpu_model;
  std::size_t machines = 0;
  double gflops = 1.0;   // per-core throughput index from Table 3
  std::uint64_t dram_gb = 256;
};

/// Table 3 of the paper, verbatim.
std::vector<MachineGroup> PaperMachineGroups();

struct SimWorkerNode {
  std::size_t index = 0;
  std::size_t group = 0;
  /// CPU time multiplier relative to the baseline group (EPYC 7532,
  /// 4.4 GFlops): exec_time = baseline_time / speed.
  double speed = 1.0;
  std::uint64_t dram_gb = 256;
};

struct ClusterConfig {
  std::size_t num_workers = 150;
  std::uint32_t cores_per_worker = 32;     // §4.2: 32 cores per worker
  std::uint64_t worker_memory_gb = 64;     // §4.2
  double worker_link_Bps = 1.25e9;         // 10 Gb/s Ethernet
  double manager_link_Bps = 1.25e9;        // manager is on the same fabric
  double local_disk_Bps = 550e6;           // SATA 6Gb/s SSD, realistic rate
  double sharedfs_bandwidth_Bps = 10.5e9;  // Panasas: 84 Gb/s aggregate
  double sharedfs_iops = 94000;            // Panasas: 94k read IOPS
  /// Per-client streaming rate for the small-file-dominated read pattern of
  /// environment loading (seek-bound, far below the 10 GbE line rate).
  double sharedfs_per_stream_Bps = 40e6;

  /// Fraction overrides for experiments that note a skewed sample, e.g.
  /// "the run with L1 and 16 inferences uses 89% of group 2 machines".
  /// Empty = Table 3 proportions.
  std::vector<double> group_fractions;
};

/// Samples `config.num_workers` workers from the machine groups, in
/// proportion (deterministic given the rng seed).
std::vector<SimWorkerNode> SampleCluster(const ClusterConfig& config,
                                         Rng& rng);

}  // namespace vinelet::sim
