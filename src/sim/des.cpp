#include "sim/des.hpp"

#include <algorithm>

namespace vinelet::sim {

void Simulation::At(double time, EventFn fn) {
  queue_.push(Event{std::max(time, now_), next_seq_++, std::move(fn)});
}

void Simulation::Run() {
  while (!queue_.empty()) {
    // Moving out of a priority_queue requires const_cast of top(); copy the
    // small fields and move the closure via a pop-then-run pattern instead.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++processed_;
    event.fn();
  }
}

void Simulation::RunUntil(double deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++processed_;
    event.fn();
  }
  now_ = std::max(now_, deadline);
}

}  // namespace vinelet::sim
