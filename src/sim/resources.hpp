// Contended-resource models for the simulator.
//
//  * FairShareResource — processor-sharing bandwidth (the shared filesystem's
//    aggregate read bandwidth, the manager's uplink, a worker's local SSD):
//    n concurrent transfers each progress at capacity/n (optionally capped
//    per-stream by a link rate).  This is what produces L1's contention
//    spread and heavy tail (paper Fig 7a) without any hand-tuned noise.
//  * IopsBucket — a metadata-operations rate limit (the shared filesystem's
//    94k IOPS, paper §4.2): bursts of small operations queue FIFO.
//  * SerialServer — a single-threaded service queue: the TaskVine manager,
//    whose per-task dispatch cost is the dominant scaling limit the paper's
//    Q3 observes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "sim/des.hpp"

namespace vinelet::sim {

class FairShareResource {
 public:
  /// `capacity` in bytes/s shared by all flows; `per_stream_cap` caps each
  /// flow (0 = uncapped).
  FairShareResource(Simulation* sim, double capacity,
                    double per_stream_cap = 0.0)
      : sim_(sim), capacity_(capacity), per_stream_cap_(per_stream_cap) {}

  /// Starts a transfer of `bytes`; `on_done` fires when it completes under
  /// fair sharing with everything else in flight.
  void Transfer(double bytes, std::function<void()> on_done);

  std::size_t active_flows() const noexcept { return flows_.size(); }
  double total_bytes_served() const noexcept { return served_; }

 private:
  struct Flow {
    double remaining;
    std::function<void()> on_done;
  };

  double RatePerFlow() const noexcept;
  void AdvanceTo(double now);
  void Reschedule();
  void OnWake(std::uint64_t generation);

  Simulation* sim_;
  double capacity_;
  double per_stream_cap_;
  double last_update_ = 0.0;
  double served_ = 0.0;
  std::uint64_t next_flow_id_ = 0;
  std::uint64_t generation_ = 0;
  std::map<std::uint64_t, Flow> flows_;
};

/// FIFO rate limiter for operation counts (IOPS).
class IopsBucket {
 public:
  IopsBucket(Simulation* sim, double ops_per_second)
      : sim_(sim), rate_(ops_per_second) {}

  /// Reserves `ops` operations; `on_done` fires when the batch has been
  /// admitted (i.e. after queueing behind earlier batches).
  void Acquire(double ops, std::function<void()> on_done);

  double backlog_seconds(double now) const noexcept {
    return next_free_ > now ? next_free_ - now : 0.0;
  }

 private:
  Simulation* sim_;
  double rate_;
  double next_free_ = 0.0;
};

/// Single-threaded FIFO server with deterministic service times.
class SerialServer {
 public:
  explicit SerialServer(Simulation* sim) : sim_(sim) {}

  /// Enqueues a job of `service_seconds`; `on_done` fires at completion.
  void Enqueue(double service_seconds, std::function<void()> on_done);

  double busy_until() const noexcept { return busy_until_; }
  double utilization(double now) const noexcept {
    return now > 0 ? busy_time_ / now : 0.0;
  }

 private:
  Simulation* sim_;
  double busy_until_ = 0.0;
  double busy_time_ = 0.0;
};

}  // namespace vinelet::sim
