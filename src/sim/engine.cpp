#include "sim/engine.hpp"

#include <algorithm>
#include <cstdio>

namespace vinelet::sim {

std::string TraceToCsv(const std::vector<InvocationTrace>& trace) {
  std::string out =
      "invocation,worker,group,dispatched,started,finished,run_time,"
      "level,transfer_s,unpack_s,setup_s,exec_s\n";
  char line[240];
  for (const auto& t : trace) {
    std::snprintf(line, sizeof(line),
                  "%zu,%zu,%zu,%.6f,%.6f,%.6f,%.6f,%d,%.6f,%.6f,%.6f,%.6f\n",
                  t.invocation, t.worker, t.machine_group, t.dispatched,
                  t.started, t.finished, t.finished - t.started, t.level,
                  t.transfer_s, t.unpack_s, t.setup_s, t.exec_s);
    out += line;
  }
  return out;
}

VineSim::VineSim(SimConfig config, std::vector<InvocationSpec> invocations)
    : config_(config),
      invocations_(std::move(invocations)),
      rng_(config.seed),
      fault_(config.fault) {
  sharedfs_bw_ = std::make_unique<FairShareResource>(
      &sim_, config_.cluster.sharedfs_bandwidth_Bps,
      config_.cluster.sharedfs_per_stream_Bps);
  sharedfs_iops_ =
      std::make_unique<IopsBucket>(&sim_, config_.cluster.sharedfs_iops);
  manager_uplink_ = std::make_unique<FairShareResource>(
      &sim_, config_.cluster.manager_link_Bps);
  manager_ = std::make_unique<SerialServer>(&sim_);

  for (const auto& spec : invocations_) {
    if (spec.library != 0) {
      multi_library_ = true;
      break;
    }
  }
  const auto nodes = SampleCluster(config_.cluster, rng_);
  workers_.reserve(nodes.size());
  const std::uint32_t cores_per_invocation =
      invocations_.empty() ? 2 : invocations_.front().costs->cores_per_invocation;
  const std::uint32_t slots =
      std::max(1u, config_.cluster.cores_per_worker / cores_per_invocation);
  for (const auto& node : nodes) {
    SimWorker worker;
    worker.node = node;
    worker.slots = slots;
    worker.free_slots = slots;
    worker.disk = std::make_unique<FairShareResource>(
        &sim_, config_.cluster.local_disk_Bps);
    workers_.push_back(std::move(worker));
  }
}

int VineSim::LevelNumber(core::ReuseLevel level) {
  switch (level) {
    case core::ReuseLevel::kL1: return 1;
    case core::ReuseLevel::kL2: return 2;
    case core::ReuseLevel::kL3: return 3;
  }
  return 0;
}

telemetry::TraceContext VineSim::TraceSpan(telemetry::TraceContext parent,
                                           telemetry::Phase phase,
                                           std::string_view category,
                                           std::string track, std::uint64_t id,
                                           double start_s, double end_s) {
  if (config_.telemetry == nullptr || !config_.telemetry->tracer.enabled())
    return parent;
  return config_.telemetry->tracer.EmitLinked(parent, phase, category, track,
                                              id, start_s, end_s);
}

void VineSim::TraceSubmit(std::size_t invocation, double popped_s) {
  if (config_.telemetry == nullptr || !config_.telemetry->tracer.enabled())
    return;
  auto& tracer = config_.telemetry->tracer;
  if (!trace_ctx_[invocation].valid()) {
    trace_ctx_[invocation] = tracer.StartTrace(
        telemetry::Phase::kSubmit, "invocation", "manager", invocation,
        queued_at_[invocation], popped_s);
  } else {
    // Re-submission after a requeue: the retry's spans join the original
    // trace, so one trace_id tells the whole story including lost attempts.
    trace_ctx_[invocation] = tracer.EmitLinked(
        trace_ctx_[invocation], telemetry::Phase::kSubmit, "invocation",
        "manager", invocation, queued_at_[invocation], popped_s);
  }
}

void VineSim::AccumEnvWait(std::size_t invocation, const SimWorker& worker,
                           double wait_from, double now) {
  if (!config_.track_trace) return;
  const auto overlap = [&](double begin, double end) {
    return std::max(0.0, std::min(end, now) - std::max(begin, wait_from));
  };
  phases_[invocation].transfer_s +=
      overlap(worker.env_transfer_started_s, worker.env_transfer_done_s);
  phases_[invocation].unpack_s +=
      overlap(worker.env_transfer_done_s, worker.env_ready_s);
}

SimResult VineSim::Run() {
  for (std::size_t i = 0; i < invocations_.size(); ++i) {
    if (invocations_[i].arrival_s <= 0.0) {
      // Closed batch: queued before the clock starts, as always.
      if (AffinityMode())
        lib_pending_[invocations_[i].library].push_back(i);
      else
        pending_.push_back(i);
      continue;
    }
    sim_.At(invocations_[i].arrival_s, [this, i] {
      if (AffinityMode())
        lib_pending_[invocations_[i].library].push_back(i);
      else
        pending_.push_back(i);
      queued_at_[i] = sim_.Now();
      PumpDispatch();
    });
  }
  result_.run_times.reserve(invocations_.size());
  phases_.assign(invocations_.size(), PhaseAccum{});
  queued_at_.assign(invocations_.size(), 0.0);
  trace_ctx_.assign(invocations_.size(), telemetry::TraceContext{});
  if (config_.track_trace) {
    dispatch_times_.assign(invocations_.size(), 0.0);
    result_.trace.reserve(invocations_.size());
  }
  done_ = invocations_.empty();

  if (config_.worker_mean_lifetime_s > 0.0 && !done_) {
    for (std::size_t w = 0; w < workers_.size(); ++w) ScheduleDeath(w);
  }
  if (!workers_.empty() && !done_) {
    for (const net::KillEvent& kill : config_.fault.kills) {
      if (kill.worker == 0) continue;  // endpoint 0 is the manager
      const std::size_t index =
          static_cast<std::size_t>(kill.worker - 1) % workers_.size();
      sim_.At(kill.at_s, [this, index] {
        if (done_ || !workers_[index].alive) return;
        ++result_.injected_kills;
        KillWorkerNow(index);
      });
    }
  }

  if (config_.timeseries != nullptr && config_.telemetry != nullptr) {
    auto& reg = config_.telemetry->metrics;
    ts_invocations_ = &reg.GetCounter("manager.invocations_completed");
    ts_roundtrip_ = &reg.GetHistogram("manager.invocation_roundtrip_s");
    ts_libraries_ = &reg.GetGauge("manager.libraries_active");
    config_.timeseries->SampleAt(0.0);  // baseline at virtual t=0
    if (!done_) ScheduleSampling();
  }

  sim_.After(0.0, [this] { PumpDispatch(); });
  sim_.Run();

  // Close the tail window (SampleAt ignores a non-advancing clock, so a
  // sampling event that already fired past the makespan is harmless).
  if (config_.timeseries != nullptr && config_.telemetry != nullptr)
    config_.timeseries->SampleAt(result_.makespan);

  result_.manager_utilization =
      result_.makespan > 0 ? manager_->utilization(result_.makespan) : 0.0;
  const net::FaultStats fault_stats = fault_.stats();
  result_.injected_setup_failures = fault_stats.setup_failures;
  result_.injected_invocation_failures = fault_stats.invocation_failures;
  result_.injected_task_failures = fault_stats.task_failures;
  result_.injected_stragglers = fault_stats.stragglers;
  return result_;
}

void VineSim::PumpDispatch() {
  if (AffinityMode()) {
    PumpAffinity();
    return;
  }
  while (!pending_.empty()) {
    // Round-robin over workers with a free slot (the manager's ring walk).
    std::size_t chosen = workers_.size();
    for (std::size_t step = 0; step < workers_.size(); ++step) {
      const std::size_t w = (rr_cursor_ + step) % workers_.size();
      if (workers_[w].alive && workers_[w].free_slots > 0) {
        chosen = w;
        rr_cursor_ = (w + 1) % workers_.size();
        break;
      }
    }
    if (chosen == workers_.size()) return;  // no capacity; resume on completion

    const std::size_t invocation = pending_.front();
    pending_.pop_front();
    SimWorker& worker = workers_[chosen];
    --worker.free_slots;
    const std::uint64_t generation = worker.generation;

    if (config_.track_trace) dispatch_times_[invocation] = sim_.Now();
    const double popped_s = sim_.Now();
    TraceSubmit(invocation, popped_s);
    const WorkloadCosts& costs = *invocations_[invocation].costs;
    const double dispatch_s = costs.ManagerFor(config_.level).dispatch_s;
    manager_->Enqueue(dispatch_s,
                      [this, chosen, generation, invocation, popped_s] {
      trace_ctx_[invocation] =
          TraceSpan(trace_ctx_[invocation], telemetry::Phase::kDispatch,
                    "invocation", "manager", invocation, popped_s, sim_.Now());
      StartOnWorker(chosen, generation, invocation);
    });
  }
}

bool VineSim::WorkerValid(std::size_t worker_index,
                          std::uint64_t generation) const {
  const SimWorker& worker = workers_[worker_index];
  return worker.alive && worker.generation == generation;
}

void VineSim::StartOnWorker(std::size_t worker_index, std::uint64_t generation,
                            std::size_t invocation) {
  if (!WorkerValid(worker_index, generation)) {
    Requeue(invocation);
    return;
  }
  SimWorker& worker = workers_[worker_index];
  ++worker.active;
  const double started = sim_.Now();
  FetchRefArgs(worker_index, generation, invocation,
               [this, worker_index, generation, invocation, started] {
    if (!WorkerValid(worker_index, generation)) {
      Requeue(invocation);
      return;
    }
    SimWorker& w = workers_[worker_index];
    switch (config_.level) {
      case core::ReuseLevel::kL1:
        RunL1(w, invocation, started);
        break;
      case core::ReuseLevel::kL2:
        RunL2(w, invocation, started);
        break;
      case core::ReuseLevel::kL3:
        RunL3(w, invocation, started);
        break;
    }
  });
}

// ---------------------------------------------------------------------------
// Pass-by-reference data-plane mirror: produced results either stay pinned
// on the producing worker (ref mode — consumers fetch peer-to-peer, as the
// runtime's BlobRef/FetchBlob path) or relay through the manager uplink (by
// value).  Everything below is a no-op for workloads without
// produces_bytes/consumes edges, so established experiments reproduce
// bit-identically.
// ---------------------------------------------------------------------------

void VineSim::FetchRefArgs(std::size_t worker_index, std::uint64_t generation,
                           std::size_t invocation,
                           std::function<void()> then) {
  const InvocationSpec& spec = invocations_[invocation];
  if (spec.consumes.empty()) {
    then();
    return;
  }
  double p2p_bytes = 0.0;
  double relay_bytes = 0.0;
  for (std::size_t producer : spec.consumes) {
    if (producer >= invocations_.size()) continue;
    const std::uint64_t bytes = invocations_[producer].produces_bytes;
    if (bytes == 0) continue;
    if (!config_.ref_results) {
      // By value the manager holds the payload inline; it is relayed again
      // inside this consumer's arguments.
      result_.manager_relayed_result_bytes += bytes;
      relay_bytes += static_cast<double>(bytes);
      continue;
    }
    auto& holders = ref_holders_[producer];
    bool local = false;
    bool have_source = false;
    for (const RefHolder& holder : holders) {
      if (!WorkerValid(holder.worker, holder.generation)) continue;
      if (holder.worker == worker_index) {
        local = true;
        break;
      }
      have_source = true;
    }
    if (local) {
      ++result_.ref_local_hits;
      continue;
    }
    if (have_source) {
      ++result_.ref_p2p_fetches;
      result_.ref_p2p_fetch_bytes += bytes;
      p2p_bytes += static_cast<double>(bytes);
    } else {
      // Every replica died before the fetch: re-materialize from the
      // manager's cached copy (the runtime's FetchRef fallback).
      ++result_.ref_manager_refetches;
      result_.manager_relayed_result_bytes += bytes;
      relay_bytes += static_cast<double>(bytes);
    }
    // The fetched copy is a replica too (the runtime's FileReady
    // announcement after the consumer pins the payload).
    holders.push_back({worker_index, generation});
  }
  const double begin = sim_.Now();
  auto done = [this, invocation, begin, then = std::move(then)] {
    if (config_.track_trace)
      phases_[invocation].transfer_s += sim_.Now() - begin;
    then();
  };
  auto cross_worker_link = [this, p2p_bytes, done = std::move(done)] {
    if (p2p_bytes <= 0.0) {
      done();
      return;
    }
    sim_.After(p2p_bytes / config_.cluster.worker_link_Bps, std::move(done));
  };
  if (relay_bytes > 0.0)
    manager_uplink_->Transfer(relay_bytes, std::move(cross_worker_link));
  else
    cross_worker_link();
}

void VineSim::RecordProducedResult(std::size_t worker_index,
                                   std::uint64_t generation,
                                   std::size_t invocation,
                                   std::function<void()> retrieve) {
  const std::uint64_t bytes = invocations_[invocation].produces_bytes;
  if (bytes == 0) {
    retrieve();
    return;
  }
  if (config_.ref_results) {
    // The payload stays pinned where it was produced; the retrieve carries
    // only the ref metadata (InvocationDoneMsg.ref in the runtime).
    ++result_.ref_results;
    ref_holders_[invocation].push_back({worker_index, generation});
    retrieve();
    return;
  }
  // By value: the result bytes cross the manager uplink ahead of the
  // retrieve, contending with environment seeding.
  result_.manager_relayed_result_bytes += bytes;
  manager_uplink_->Transfer(static_cast<double>(bytes), std::move(retrieve));
}

double VineSim::Contention(const SimWorker& worker, double beta) const {
  if (worker.slots <= 1 || worker.active <= 1) return 1.0;
  const double co_located = static_cast<double>(worker.active - 1) /
                            static_cast<double>(worker.slots - 1);
  return 1.0 + beta * co_located;
}

double VineSim::ExecNoise(const WorkloadCosts& costs) {
  double noise = rng_.LogNormal(0.0, costs.exec_noise_sigma);
  if (costs.straggler_prob > 0.0 &&
      rng_.NextDouble() < costs.straggler_prob) {
    noise *= costs.straggler_factor;
  }
  return noise;
}

void VineSim::CpuPhase(const SimWorker& worker, double baseline_seconds,
                       std::function<void()> done) {
  sim_.After(baseline_seconds / worker.node.speed, std::move(done));
}

void VineSim::RunL1(SimWorker& worker, std::size_t invocation,
                    double started) {
  // Stateless task: metadata storm, shared-FS reads, then rebuild + exec —
  // every single time (paper L1: "all tasks are instructed to pull all data
  // and software dependencies from the shared file system").
  const std::size_t worker_index = worker.node.index;
  const std::uint64_t generation = worker.generation;
  const WorkloadCosts& costs = *invocations_[invocation].costs;
  const double exec_scale = invocations_[invocation].exec_scale;
  // Per-invocation FS volume varies (page-cache luck, input sizes): the
  // unit-mean lognormal multiplier produces L1's heavy tail.
  const double fs_bytes =
      costs.l1_fs_bytes *
      rng_.LogNormal(-costs.l1_fs_bytes_sigma * costs.l1_fs_bytes_sigma / 2,
                     costs.l1_fs_bytes_sigma);
  // The latency-bound portion (per-file round trips) is not bandwidth-
  // shareable; it simply elapses.
  const double fs_latency =
      costs.l1_fs_latency_s > 0
          ? costs.l1_fs_latency_s * rng_.LogNormal(-0.02, 0.2)
          : 0.0;
  sharedfs_iops_->Acquire(
      costs.l1_fs_ops,
      [this, worker_index, generation, invocation, started, &costs,
       exec_scale, fs_bytes, fs_latency] {
        sim_.After(fs_latency, [this, worker_index, generation, invocation,
                                started, &costs, exec_scale, fs_bytes] {
        sharedfs_bw_->Transfer(
            fs_bytes,
            [this, worker_index, generation, invocation, started, &costs,
             exec_scale] {
              if (!WorkerValid(worker_index, generation)) {
                Requeue(invocation);
                return;
              }
              SimWorker& w = workers_[worker_index];
              const double fetched_s = sim_.Now();
              trace_ctx_[invocation] = TraceSpan(
                  trace_ctx_[invocation], telemetry::Phase::kTransfer,
                  "invocation", "worker-" + std::to_string(worker_index),
                  invocation, started, fetched_s);
              if (config_.track_trace)
                phases_[invocation].transfer_s += fetched_s - started;
              // CPU phase: rebuild the in-memory context, then execute;
              // both stretched by co-located invocations.
              const double ctx_cpu =
                  (costs.deserialize_s + costs.context_rebuild_cpu_s) *
                  Contention(w, costs.contention_beta_context);
              const double exec_cpu =
                  costs.exec_cpu_s * exec_scale * ExecNoise(costs) *
                  Contention(w, costs.contention_beta_exec);
              const double ctx_d = ctx_cpu / w.node.speed;
              const double exec_d = exec_cpu / w.node.speed;
              CpuPhase(w, ctx_cpu + exec_cpu,
                       [this, worker_index, generation, invocation, started,
                        ctx_d, exec_d] {
                         if (WorkerValid(worker_index, generation)) {
                           const double end = sim_.Now();
                           const std::string track =
                               "worker-" + std::to_string(worker_index);
                           trace_ctx_[invocation] = TraceSpan(
                               trace_ctx_[invocation],
                               telemetry::Phase::kDeserialize, "invocation",
                               track, invocation, end - ctx_d - exec_d,
                               end - exec_d);
                           trace_ctx_[invocation] = TraceSpan(
                               trace_ctx_[invocation], telemetry::Phase::kExec,
                               "invocation", track, invocation, end - exec_d,
                               end);
                           if (config_.track_trace) {
                             phases_[invocation].setup_s += ctx_d;
                             phases_[invocation].exec_s += exec_d;
                           }
                         }
                         CompleteOnWorker(worker_index, generation, invocation,
                                          started);
                       });
            });
        });
      });
}

void VineSim::RunL2(SimWorker& worker, std::size_t invocation,
                    double started) {
  // Stateful-on-disk task: environment fetched/unpacked once per worker;
  // the invocation reads the context from local disk and rebuilds the
  // in-memory state.
  const std::size_t worker_index = worker.node.index;
  const std::uint64_t generation = worker.generation;
  const WorkloadCosts& costs = *invocations_[invocation].costs;
  const double exec_scale = invocations_[invocation].exec_scale;
  EnsureEnv(worker_index, generation, trace_ctx_[invocation],
            [this, worker_index, generation, invocation, started, &costs,
             exec_scale] {
    if (!WorkerValid(worker_index, generation)) {
      Requeue(invocation);
      return;
    }
    AccumEnvWait(invocation, workers_[worker_index], started, sim_.Now());
    const double disk_begin = sim_.Now();
    workers_[worker_index].disk->Transfer(
        costs.l2_local_bytes,
        [this, worker_index, generation, invocation, started, &costs,
         exec_scale, disk_begin] {
          if (!WorkerValid(worker_index, generation)) {
            Requeue(invocation);
            return;
          }
          SimWorker& w = workers_[worker_index];
          const double disk_end = sim_.Now();
          const std::string track = "worker-" + std::to_string(worker_index);
          trace_ctx_[invocation] =
              TraceSpan(trace_ctx_[invocation], telemetry::Phase::kUnpack,
                        "invocation", track, invocation, disk_begin, disk_end);
          if (config_.track_trace)
            phases_[invocation].unpack_s += disk_end - disk_begin;
          const double ctx_cpu =
              (costs.deserialize_s + costs.context_rebuild_cpu_s) *
              Contention(w, costs.contention_beta_context);
          const double exec_cpu = costs.exec_cpu_s * exec_scale *
                                  ExecNoise(costs) *
                                  Contention(w, costs.contention_beta_exec);
          const double ctx_d = ctx_cpu / w.node.speed;
          const double exec_d = exec_cpu / w.node.speed;
          CpuPhase(w, ctx_cpu + exec_cpu,
                   [this, worker_index, generation, invocation, started,
                    ctx_d, exec_d, track] {
                     if (WorkerValid(worker_index, generation)) {
                       const double end = sim_.Now();
                       trace_ctx_[invocation] = TraceSpan(
                           trace_ctx_[invocation],
                           telemetry::Phase::kDeserialize, "invocation",
                           track, invocation, end - ctx_d - exec_d,
                           end - exec_d);
                       trace_ctx_[invocation] = TraceSpan(
                           trace_ctx_[invocation], telemetry::Phase::kExec,
                           "invocation", track, invocation, end - exec_d,
                           end);
                       if (config_.track_trace) {
                         phases_[invocation].setup_s += ctx_d;
                         phases_[invocation].exec_s += exec_d;
                       }
                     }
                     CompleteOnWorker(worker_index, generation, invocation,
                                      started);
                   });
        });
  });
}

void VineSim::RunL3(SimWorker& worker, std::size_t invocation,
                    double started) {
  // Invocation against a resident library.  Libraries carry
  // config_.library_slots invocation slots each; the paper's LNNI
  // deployment uses 1, so a 16-slot worker hosts up to 16 instances
  // (Fig 10).  A free library slot serves the invocation immediately;
  // otherwise a new instance is deployed if the worker has room
  // (environment shared per worker, in-memory setup per instance), and
  // failing that the invocation waits for an instance mid-setup.
  ServeL3(worker.node.index, worker.generation, invocation, started);
}

void VineSim::DrainLibraryWaiters(SimWorker& worker) {
  while (worker.library_free_slots > 0 && !worker.library_waiters.empty()) {
    auto waiter = std::move(worker.library_waiters.front());
    worker.library_waiters.erase(worker.library_waiters.begin());
    waiter();
  }
}

void VineSim::ServeL3(std::size_t worker_index, std::uint64_t generation,
                      std::size_t invocation, double started) {
  if (!WorkerValid(worker_index, generation)) {
    Requeue(invocation);
    return;
  }
  SimWorker& w = workers_[worker_index];
  if (w.library_free_slots > 0) {
    --w.library_free_slots;
    RunL3Invocation(worker_index, generation, invocation, started);
    return;
  }
  const std::uint32_t k = std::max(1u, config_.library_slots);
  const WorkloadCosts& costs = *invocations_[invocation].costs;
  if ((w.libraries + w.deploying) * k < w.slots) {
    // Room for another instance: stage the env, run the setup, then this
    // invocation takes the first of its slots.
    ++w.deploying;
    EnsureEnv(worker_index, generation, trace_ctx_[invocation],
              [this, worker_index, generation, invocation, started, k,
               &costs] {
      if (!WorkerValid(worker_index, generation)) {
        Requeue(invocation);
        return;
      }
      SimWorker& w2 = workers_[worker_index];
      AccumEnvWait(invocation, w2, started, sim_.Now());
      const double setup_cpu = costs.context_setup_cpu_s *
                               Contention(w2, costs.contention_beta_context);
      const double setup_d = setup_cpu / w2.node.speed;
      CpuPhase(
          w2, setup_cpu,
          [this, worker_index, generation, invocation, started, k, setup_d] {
            if (!WorkerValid(worker_index, generation)) {
              Requeue(invocation);
              return;
            }
            if (config_.fault.worker.setup_failure_p > 0.0 &&
                fault_.InjectSetupFailure(worker_index + 1)) {
              // Setup failed after burning the setup time: the instance never
              // becomes active and the invocation retries from scheduling
              // (an existing slot, or another deploy attempt).
              SimWorker& wf = workers_[worker_index];
              if (wf.deploying > 0) --wf.deploying;
              ServeL3(worker_index, generation, invocation, started);
              return;
            }
            trace_ctx_[invocation] = TraceSpan(
                trace_ctx_[invocation], telemetry::Phase::kContextSetup,
                "library", "worker-" + std::to_string(worker_index),
                invocation, sim_.Now() - setup_d, sim_.Now());
            if (config_.track_trace)
              phases_[invocation].setup_s += setup_d;
            SimWorker& w3 = workers_[worker_index];
            if (w3.deploying > 0) --w3.deploying;
            ++w3.libraries;
            ++result_.libraries_deployed_total;
            ++active_libraries_;
            result_.libraries_peak_active =
                std::max(result_.libraries_peak_active, active_libraries_);
            // This invocation takes one of the k fresh slots; the rest can
            // serve queued invocations.
            w3.library_free_slots += k - 1;
            DrainLibraryWaiters(w3);
            RunL3Invocation(worker_index, generation, invocation, started);
          });
    });
    return;
  }
  // Every possible instance is deployed or deploying and every slot is
  // busy: wait for a slot (released on completion or by a finishing setup).
  w.library_waiters.push_back(
      [this, worker_index, generation, invocation, started] {
        ServeL3(worker_index, generation, invocation, started);
      });
}

void VineSim::RunL3Invocation(std::size_t worker_index,
                              std::uint64_t generation,
                              std::size_t invocation, double started) {
  SimWorker& w = workers_[worker_index];
  const WorkloadCosts& costs = *invocations_[invocation].costs;
  const double over_cpu = costs.invocation_overhead_s;
  const double exec_cpu = costs.exec_cpu_s *
                          invocations_[invocation].exec_scale *
                          ExecNoise(costs) *
                          Contention(w, costs.contention_beta_exec);
  const double over_d = over_cpu / w.node.speed;
  const double exec_d = exec_cpu / w.node.speed;
  CpuPhase(w, over_cpu + exec_cpu,
           [this, worker_index, generation, invocation, started, over_d,
            exec_d] {
             if (WorkerValid(worker_index, generation)) {
               const double end = sim_.Now();
               const std::string track =
                   "worker-" + std::to_string(worker_index);
               trace_ctx_[invocation] = TraceSpan(
                   trace_ctx_[invocation], telemetry::Phase::kDeserialize,
                   "invocation", track, invocation, end - over_d - exec_d,
                   end - exec_d);
               trace_ctx_[invocation] = TraceSpan(
                   trace_ctx_[invocation], telemetry::Phase::kExec,
                   "invocation", track, invocation, end - exec_d, end);
               if (config_.track_trace) {
                 phases_[invocation].setup_s += over_d;
                 phases_[invocation].exec_s += exec_d;
               }
               SimWorker& w2 = workers_[worker_index];
               ++w2.library_free_slots;
               DrainLibraryWaiters(w2);
             }
             CompleteOnWorker(worker_index, generation, invocation, started);
           });
}

// ---------------------------------------------------------------------------
// Context-affinity scheduling mirror: the same pure policy functions the
// live Manager runs (core/scheduler.hpp), driven by the DES event loop, so
// one (config, workload) pair produces identical scheduling decisions in
// both backends — just at 10k-worker scale here.
// ---------------------------------------------------------------------------

void VineSim::PumpAffinity() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& [lib, queue] : lib_pending_) {
      if (queue.empty()) continue;
      if (ScheduleLibraryAffinity(lib)) progress = true;
    }
  }
}

core::AutoscaleSignal VineSim::BuildSimSignal(std::size_t lib) const {
  core::AutoscaleSignal signal;
  auto queue_it = lib_pending_.find(lib);
  if (queue_it != lib_pending_.end())
    signal.queue_depth = queue_it->second.size();
  const std::uint32_t k = std::max(1u, config_.library_slots);
  std::uint64_t served = 0;
  for (const auto& worker : workers_) {
    if (!worker.alive) continue;
    if ((worker.libraries + worker.deploying) * k + k <= worker.slots)
      ++signal.workers_with_room;
    auto it = worker.libs.find(lib);
    if (it == worker.libs.end()) continue;
    signal.ready_instances += it->second.instances;
    signal.free_slots += it->second.free_slots;
    signal.pending_instances += it->second.deploying;
    signal.pending_slots += it->second.deploying * k;
    served += it->second.served;
  }
  if (signal.ready_instances > 0)
    signal.share_value = static_cast<double>(served) /
                         static_cast<double>(signal.ready_instances);
  return signal;
}

bool VineSim::ScheduleLibraryAffinity(std::size_t lib) {
  const bool affinity =
      config_.scheduler.policy == core::SchedulerPolicy::kAffinity;
  auto& queue = lib_pending_[lib];
  bool any = false;
  while (!queue.empty()) {
    // Route to a warm slot.  kAffinity: least-loaded via the shared
    // decision function, same tie-break as Manager::TryDispatchCall.
    // kFirstFit: the first warm instance in order, the legacy rule.
    std::vector<core::DispatchCandidate> candidates;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (!workers_[w].alive) continue;
      auto it = workers_[w].libs.find(lib);
      if (it == workers_[w].libs.end() || it->second.free_slots == 0)
        continue;
      candidates.push_back(
          {static_cast<std::uint64_t>(w), it->second.free_slots});
      if (!affinity) break;  // first fit: first candidate wins
    }
    const std::size_t pick =
        core::PickLeastLoaded(candidates.data(), candidates.size());
    if (pick != core::kNoCandidate) {
      DispatchBatchTo(
          static_cast<std::size_t>(candidates[pick].instance_id), lib);
      any = true;
      continue;
    }
    const core::AutoscaleSignal signal = BuildSimSignal(lib);
    core::AutoscaleAction action;
    if (affinity) {
      action = core::DecideAutoscale(config_.scheduler, signal);
    } else {
      // Legacy rule, as Manager::TryScheduleLibrary under kFirstFit.
      action = signal.queue_depth <= signal.free_slots + signal.pending_slots
                   ? core::AutoscaleAction::kHold
                   : core::AutoscaleAction::kDeploy;
    }
    if (action != core::AutoscaleAction::kDeploy) break;
    if (TryDeploySim(lib)) {
      ++result_.autoscale_deploys;
      any = true;
      continue;
    }
    // No worker has room: reclaim an idle library (§3.5.2).  Eviction is
    // instantaneous in the fluid model, so retry the deploy right away
    // (the runtime instead waits for LibraryRemoved and re-enters here).
    if (TryEvictIdleSim(lib)) {
      any = true;
      continue;
    }
    break;
  }
  return any;
}

void VineSim::DispatchBatchTo(std::size_t worker_index, std::size_t lib) {
  SimWorker& worker = workers_[worker_index];
  auto& state = worker.libs[lib];
  auto& queue = lib_pending_[lib];
  const std::size_t max_batch =
      std::max<std::uint32_t>(1, config_.scheduler.max_batch);
  const std::size_t take = std::min(
      {queue.size(), static_cast<std::size_t>(state.free_slots), max_batch});
  std::vector<std::size_t> batch;
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(queue.front());
    queue.pop_front();
  }
  state.free_slots -= static_cast<std::uint32_t>(take);
  result_.affinity_hits += take;
  ++result_.dispatch_batches;
  result_.dispatch_batched_invocations += take;
  result_.dispatch_max_batch =
      std::max<std::uint64_t>(result_.dispatch_max_batch, take);

  const double popped_s = sim_.Now();
  for (std::size_t invocation : batch) TraceSubmit(invocation, popped_s);
  // One manager service for the whole batch: the full per-message dispatch
  // cost once, then the calibrated marginal cost per extra batched item —
  // the protocol amortization RunInvocationBatchMsg buys.
  const WorkloadCosts& costs = *invocations_[batch.front()].costs;
  const double dispatch_s = costs.ManagerFor(config_.level).dispatch_s;
  const double service_s =
      dispatch_s *
      (1.0 + config_.batch_item_cost_factor * static_cast<double>(take - 1));
  const std::uint64_t generation = worker.generation;
  manager_->Enqueue(service_s, [this, worker_index, generation,
                                batch = std::move(batch), popped_s] {
    for (std::size_t invocation : batch) {
      trace_ctx_[invocation] =
          TraceSpan(trace_ctx_[invocation], telemetry::Phase::kDispatch,
                    "invocation", "manager", invocation, popped_s, sim_.Now());
      if (config_.track_trace) dispatch_times_[invocation] = sim_.Now();
      if (!WorkerValid(worker_index, generation)) {
        Requeue(invocation);
        continue;
      }
      ++workers_[worker_index].active;
      const double started = sim_.Now();
      FetchRefArgs(worker_index, generation, invocation,
                   [this, worker_index, generation, invocation, started] {
        if (!WorkerValid(worker_index, generation)) {
          Requeue(invocation);
          return;
        }
        RunAffinityInvocation(worker_index, generation, invocation, started);
      });
    }
  });
}

void VineSim::RunAffinityInvocation(std::size_t worker_index,
                                    std::uint64_t generation,
                                    std::size_t invocation, double started) {
  SimWorker& w = workers_[worker_index];
  const WorkloadCosts& costs = *invocations_[invocation].costs;
  const std::size_t lib = invocations_[invocation].library;
  const double over_cpu = costs.invocation_overhead_s;
  const double exec_cpu = costs.exec_cpu_s *
                          invocations_[invocation].exec_scale *
                          ExecNoise(costs) *
                          Contention(w, costs.contention_beta_exec);
  const double over_d = over_cpu / w.node.speed;
  const double exec_d = exec_cpu / w.node.speed;
  CpuPhase(w, over_cpu + exec_cpu,
           [this, worker_index, generation, invocation, started, over_d,
            exec_d, lib] {
             if (WorkerValid(worker_index, generation)) {
               const double end = sim_.Now();
               const std::string track =
                   "worker-" + std::to_string(worker_index);
               trace_ctx_[invocation] = TraceSpan(
                   trace_ctx_[invocation], telemetry::Phase::kDeserialize,
                   "invocation", track, invocation, end - over_d - exec_d,
                   end - exec_d);
               trace_ctx_[invocation] = TraceSpan(
                   trace_ctx_[invocation], telemetry::Phase::kExec,
                   "invocation", track, invocation, end - exec_d, end);
               if (config_.track_trace) {
                 phases_[invocation].setup_s += over_d;
                 phases_[invocation].exec_s += exec_d;
               }
               auto& state = workers_[worker_index].libs[lib];
               ++state.free_slots;
               ++state.served;
             }
             CompleteOnWorker(worker_index, generation, invocation, started);
           });
}

bool VineSim::TryDeploySim(std::size_t lib) {
  const std::uint32_t k = std::max(1u, config_.library_slots);
  // Deterministic target.  kAffinity: most uncommitted slots, ties to the
  // lowest worker index; kFirstFit: the first worker with room.  (The
  // runtime walks its hash ring; both orders are deterministic, which is
  // what the decision-mirror tests rely on.)
  const bool affinity =
      config_.scheduler.policy == core::SchedulerPolicy::kAffinity;
  std::size_t best = workers_.size();
  std::uint32_t best_room = 0;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const SimWorker& worker = workers_[w];
    if (!worker.alive) continue;
    const std::uint32_t committed = (worker.libraries + worker.deploying) * k;
    if (committed + k > worker.slots) continue;
    const std::uint32_t room = worker.slots - committed;
    if (best == workers_.size() || room > best_room) {
      best = w;
      best_room = room;
    }
    if (!affinity) break;  // first fit: first worker with room wins
  }
  if (best == workers_.size()) return false;

  SimWorker& worker = workers_[best];
  const core::WorkerId affinity_id = static_cast<core::WorkerId>(best + 1);
  if (affinity_.CountFor(LibKey(lib)) > 0 &&
      !affinity_.Contains(LibKey(lib), affinity_id))
    ++result_.steals;
  ++result_.affinity_misses;  // the backlog outran warm capacity
  ++worker.deploying;
  ++worker.libs[lib].deploying;
  const std::uint64_t generation = worker.generation;
  // Stage the (shared) environment, then pay the per-instance context
  // setup — the same two phases ServeL3 charges, but owned by the
  // autoscaler rather than the head-of-line invocation.
  EnsureEnv(best, generation, telemetry::TraceContext{},
            [this, best, generation, lib, k] {
    if (!WorkerValid(best, generation)) return;
    SimWorker& w2 = workers_[best];
    const WorkloadCosts& costs = *invocations_.front().costs;
    const double setup_cpu = costs.context_setup_cpu_s *
                             Contention(w2, costs.contention_beta_context);
    CpuPhase(w2, setup_cpu, [this, best, generation, lib, k] {
      if (!WorkerValid(best, generation)) return;
      SimWorker& w3 = workers_[best];
      if (w3.deploying > 0) --w3.deploying;
      auto& state = w3.libs[lib];
      if (state.deploying > 0) --state.deploying;
      if (config_.fault.worker.setup_failure_p > 0.0 &&
          fault_.InjectSetupFailure(best + 1)) {
        // Setup burned its time and failed; queue pressure re-triggers the
        // autoscaler on the next pump.
        PumpDispatch();
        return;
      }
      ++w3.libraries;
      ++state.instances;
      state.free_slots += k;
      affinity_.Add(LibKey(lib), static_cast<core::WorkerId>(best + 1));
      ++result_.libraries_deployed_total;
      ++active_libraries_;
      result_.libraries_peak_active =
          std::max(result_.libraries_peak_active, active_libraries_);
      PumpDispatch();
    });
  });
  return true;
}

bool VineSim::TryEvictIdleSim(std::size_t for_lib) {
  const std::uint32_t k = std::max(1u, config_.library_slots);
  // Fig 11 eviction order, as in Manager::TryEvictEmptyLibrary: among
  // fully idle instances of other (queue-empty) libraries, prefer those
  // DecideAutoscale flags as victims (share value below the floor), then
  // the least-served.
  std::size_t victim_worker = workers_.size();
  std::size_t victim_lib = 0;
  bool victim_preferred = false;
  std::uint64_t victim_served = 0;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    SimWorker& worker = workers_[w];
    if (!worker.alive) continue;
    for (auto& [lib, state] : worker.libs) {
      if (lib == for_lib) continue;
      if (state.instances == 0) continue;
      if (state.free_slots < k) continue;  // no fully idle instance here
      auto queue_it = lib_pending_.find(lib);
      if (queue_it != lib_pending_.end() && !queue_it->second.empty())
        continue;
      if (config_.scheduler.policy != core::SchedulerPolicy::kAffinity) {
        victim_worker = w;  // legacy first-fit: first idle instance wins
        victim_lib = lib;
        break;
      }
      const bool preferred =
          core::DecideAutoscale(config_.scheduler, BuildSimSignal(lib)) ==
          core::AutoscaleAction::kEvict;
      if (victim_worker == workers_.size() ||
          (preferred && !victim_preferred) ||
          (preferred == victim_preferred && state.served < victim_served)) {
        victim_worker = w;
        victim_lib = lib;
        victim_preferred = preferred;
        victim_served = state.served;
      }
    }
    if (victim_worker != workers_.size() &&
        config_.scheduler.policy != core::SchedulerPolicy::kAffinity)
      break;
  }
  if (victim_worker == workers_.size()) return false;
  SimWorker& worker = workers_[victim_worker];
  auto& state = worker.libs[victim_lib];
  --state.instances;
  state.free_slots -= k;
  if (worker.libraries > 0) --worker.libraries;
  affinity_.Remove(LibKey(victim_lib),
                   static_cast<core::WorkerId>(victim_worker + 1));
  if (active_libraries_ > 0) --active_libraries_;
  ++result_.autoscale_evicts;
  return true;
}

// ---------------------------------------------------------------------------
// Environment distribution: manager seeds up to `env_fanout` workers, then
// every completed replica contributes `env_fanout` upload slots that serve
// queued workers — the spanning tree of §3.3 in fluid form.
// ---------------------------------------------------------------------------

void VineSim::EnsureEnv(std::size_t worker_index, std::uint64_t generation,
                        telemetry::TraceContext trace,
                        std::function<void()> ready) {
  if (!WorkerValid(worker_index, generation)) return;
  SimWorker& worker = workers_[worker_index];
  if (worker.env == SimWorker::Env::kReady) {
    sim_.After(0.0, std::move(ready));
    return;
  }
  worker.env_waiters.push_back(std::move(ready));
  if (worker.env == SimWorker::Env::kTransferring) return;
  worker.env = SimWorker::Env::kTransferring;
  worker.env_trace = trace;  // first requester parents the env spans
  worker.env_transfer_started_s = sim_.Now();
  RequestEnvTransfer(worker_index);
}

void VineSim::RequestEnvTransfer(std::size_t worker_index) {
  if (config_.peer_transfers && !env_serving_slots_.empty()) {
    const double source_done_s = env_serving_slots_.front();
    env_serving_slots_.pop_front();
    StartPeerEnvTransfer(worker_index, source_done_s);
    return;
  }
  if (env_manager_seeds_inflight_ < config_.env_fanout) {
    ++env_manager_seeds_inflight_;
    ++result_.env_manager_transfers;
    const std::uint64_t generation = workers_[worker_index].generation;
    const WorkloadCosts& costs = *invocations_.front().costs;
    if (ChunkedEnv()) {
      // Deterministic fair share of the manager uplink: a broadcast keeps
      // every seed slot busy, so each stream gets 1/env_fanout of the link
      // (matching the analytic planner's root-edge model).
      const double rate = config_.cluster.manager_link_Bps /
                          std::max(1u, config_.env_fanout);
      const double duration = costs.env_packed_bytes / rate;
      const double finish_s = sim_.Now() + duration;
      ScheduleEarlyServe(worker_index, generation, rate, finish_s);
      sim_.After(duration, [this, worker_index, generation] {
        --env_manager_seeds_inflight_;
        OnEnvTransferDone(worker_index, generation, /*from_manager=*/true);
      });
    } else {
      manager_uplink_->Transfer(
          costs.env_packed_bytes, [this, worker_index, generation] {
            --env_manager_seeds_inflight_;
            OnEnvTransferDone(worker_index, generation, /*from_manager=*/true);
          });
    }
    return;
  }
  env_transfer_queue_.push_back(worker_index);
}

void VineSim::StartPeerEnvTransfer(std::size_t worker_index,
                                   double source_done_s) {
  ++result_.env_peer_transfers;
  const std::uint64_t generation = workers_[worker_index].generation;
  const WorkloadCosts& costs = *invocations_.front().costs;
  const double rate = config_.cluster.worker_link_Bps;
  const double now = sim_.Now();
  double finish_s = now + costs.env_packed_bytes / rate;
  if (ChunkedEnv()) {
    // Cut-through hop: the last chunk cannot leave the source before the
    // source itself holds it, and needs one chunk-time to cross the link.
    finish_s = ChunkedHopFinishS(
        source_done_s, now, costs.env_packed_bytes / rate,
        static_cast<double>(config_.env_chunk_bytes) / rate);
    ScheduleEarlyServe(worker_index, generation, rate, finish_s);
  }
  sim_.After(finish_s - now, [this, worker_index, generation] {
    // The source's upload slot frees regardless of the destination's fate;
    // by now the source holds the full blob, so the slot is untagged.
    ReleaseEnvServingSlots(1, sim_.Now());
    OnEnvTransferDone(worker_index, generation,
                      /*from_manager=*/false);
  });
}

void VineSim::ScheduleEarlyServe(std::size_t worker_index,
                                 std::uint64_t generation, double rate_Bps,
                                 double finish_s) {
  const double chunk_s =
      static_cast<double>(config_.env_chunk_bytes) / rate_Bps;
  sim_.After(chunk_s, [this, worker_index, generation, finish_s] {
    // The replica died before its first chunk landed: no upload slots.
    if (!WorkerValid(worker_index, generation)) return;
    ReleaseEnvServingSlots(config_.env_fanout, finish_s);
  });
}

void VineSim::OnEnvTransferDone(std::size_t worker_index,
                                std::uint64_t generation, bool from_manager) {
  (void)from_manager;
  if (!WorkerValid(worker_index, generation)) {
    // Destination died mid-transfer: no new replica, but the tree keeps
    // draining through the slots released above.
    return;
  }
  // This worker's on-disk copy can now serve peers (before unpack — the
  // cached tarball, not the expanded tree, is what transfers).  In chunked
  // mode the slots were already released at first-chunk time (cut-through).
  if (!ChunkedEnv()) ReleaseEnvServingSlots(config_.env_fanout, sim_.Now());

  SimWorker& worker = workers_[worker_index];
  worker.env_transfer_done_s = sim_.Now();
  result_.env_last_transfer_done_s =
      std::max(result_.env_last_transfer_done_s, worker.env_transfer_done_s);
  const std::string track = "worker-" + std::to_string(worker_index);
  worker.env_trace = TraceSpan(worker.env_trace, telemetry::Phase::kTransfer,
                               "file", track, worker_index,
                               worker.env_transfer_started_s,
                               worker.env_transfer_done_s);
  const WorkloadCosts& costs = *invocations_.front().costs;
  const double unpack_begin = sim_.Now();
  CpuPhase(worker, costs.unpack_cpu_s,
           [this, worker_index, generation, unpack_begin, track] {
             if (!WorkerValid(worker_index, generation)) return;
             SimWorker& w = workers_[worker_index];
             w.env = SimWorker::Env::kReady;
             w.env_ready_s = sim_.Now();
             w.env_trace = TraceSpan(w.env_trace, telemetry::Phase::kUnpack,
                                     "file", track, worker_index,
                                     unpack_begin, w.env_ready_s);
             auto waiters = std::move(w.env_waiters);
             w.env_waiters.clear();
             for (auto& fn : waiters) fn();
           });
}

void VineSim::ReleaseEnvServingSlots(unsigned count, double source_done_s) {
  if (!config_.peer_transfers) {
    // Fig 3a mode: replicas never serve; the manager (sequentially, up to
    // its seed cap) is the only source.  Drain a snapshot of the queue so
    // re-queued entries are not popped again in this call.
    std::deque<std::size_t> queued;
    queued.swap(env_transfer_queue_);
    for (std::size_t next : queued) {
      if (workers_[next].alive &&
          workers_[next].env == SimWorker::Env::kTransferring) {
        RequestEnvTransfer(next);
      }
    }
    return;
  }
  for (unsigned i = 0; i < count; ++i) {
    // Serve queued workers first; skip entries that died while queued.
    bool served = false;
    while (!env_transfer_queue_.empty()) {
      const std::size_t next = env_transfer_queue_.front();
      env_transfer_queue_.pop_front();
      if (workers_[next].alive &&
          workers_[next].env == SimWorker::Env::kTransferring) {
        StartPeerEnvTransfer(next, source_done_s);
        served = true;
        break;
      }
    }
    if (!served) env_serving_slots_.push_back(source_done_s);
  }
}

// ---------------------------------------------------------------------------
// Completion, requeue, churn.
// ---------------------------------------------------------------------------

void VineSim::CompleteOnWorker(std::size_t worker_index,
                               std::uint64_t generation,
                               std::size_t invocation, double started) {
  if (!WorkerValid(worker_index, generation)) {
    Requeue(invocation);
    return;
  }
  if (config_.fault.worker.straggler_p > 0.0) {
    // Mirrors the runtime straggler hook: the slot stays occupied and the
    // extra time shows up as a slow execution (run_time includes it).
    const double slow = fault_.StragglerDelayS(worker_index + 1);
    if (slow > 0.0) {
      sim_.After(slow, [this, worker_index, generation, invocation, started] {
        FinishOnWorker(worker_index, generation, invocation, started);
      });
      return;
    }
  }
  FinishOnWorker(worker_index, generation, invocation, started);
}

void VineSim::FinishOnWorker(std::size_t worker_index, std::uint64_t generation,
                             std::size_t invocation, double started) {
  if (!WorkerValid(worker_index, generation)) {
    Requeue(invocation);
    return;
  }
  SimWorker& worker = workers_[worker_index];
  // Affinity mode tracks capacity through per-library slots instead of the
  // round-robin worker slot pool.
  if (!AffinityMode()) ++worker.free_slots;
  if (worker.active > 0) --worker.active;
  const net::WorkerFaults& wf = config_.fault.worker;
  if (wf.invocation_failure_p > 0.0 || wf.task_failure_p > 0.0) {
    // L3 runs library invocations; L1/L2 run ordinary tasks — each draws
    // from its own per-worker hook stream, matching the runtime.
    const bool failed = config_.level == core::ReuseLevel::kL3
                            ? fault_.InjectInvocationFailure(worker_index + 1)
                            : fault_.InjectTaskFailure(worker_index + 1);
    if (failed) {
      Requeue(invocation);
      return;
    }
  }
  const double run_time = sim_.Now() - started;
  if (config_.track_trace) {
    const PhaseAccum& p = phases_[invocation];
    result_.trace.push_back({invocation, worker_index, worker.node.group,
                             dispatch_times_[invocation], started, sim_.Now(),
                             LevelNumber(config_.level), p.transfer_s,
                             p.unpack_s, p.setup_s, p.exec_s});
  }

  const WorkloadCosts& costs = *invocations_[invocation].costs;
  const double retrieve_s = costs.ManagerFor(config_.level).retrieve_s;
  const double retrieve_queued_s = sim_.Now();
  RecordProducedResult(worker_index, generation, invocation,
                       [this, run_time, invocation, retrieve_queued_s,
                        retrieve_s] {
  manager_->Enqueue(retrieve_s, [this, run_time, invocation,
                                 retrieve_queued_s] {
    trace_ctx_[invocation] =
        TraceSpan(trace_ctx_[invocation], telemetry::Phase::kResult,
                  "invocation", "manager", invocation, retrieve_queued_s,
                  sim_.Now());
    ++result_.invocations_completed;
    result_.run_time.Add(run_time);
    result_.run_times.push_back(run_time);
    result_.makespan = sim_.Now();
    if (ts_invocations_ != nullptr) {
      // Publish the same completion metrics the live manager records, in
      // virtual time, so the windowed sampler sees one schema for both.
      ts_invocations_->Add();
      ts_roundtrip_->Observe(sim_.Now() - queued_at_[invocation]);
      ts_libraries_->Set(static_cast<double>(active_libraries_));
    }
    if (result_.invocations_completed == invocations_.size()) done_ = true;
    if (config_.track_series) {
      const auto completed =
          static_cast<double>(result_.invocations_completed);
      result_.active_libraries.Add(completed,
                                   static_cast<double>(active_libraries_));
      const double deployed = static_cast<double>(
          std::max<std::uint64_t>(1, result_.libraries_deployed_total));
      result_.avg_share_value.Add(completed, completed / deployed);
    }
    PumpDispatch();
  });
  });
  PumpDispatch();  // the freed slot can take new work immediately
}

void VineSim::Requeue(std::size_t invocation) {
  ++result_.requeued_invocations;
  if (config_.track_trace) phases_[invocation] = PhaseAccum{};
  queued_at_[invocation] = sim_.Now();
  if (AffinityMode())
    lib_pending_[invocations_[invocation].library].push_back(invocation);
  else
    pending_.push_back(invocation);
  PumpDispatch();
}

void VineSim::ScheduleSampling() {
  sim_.After(config_.timeseries->config().window_s, [this] {
    config_.timeseries->SampleAt(sim_.Now());
    if (!done_) ScheduleSampling();
  });
}

void VineSim::ScheduleDeath(std::size_t worker_index) {
  const double lifetime = rng_.Exponential(config_.worker_mean_lifetime_s);
  sim_.After(lifetime, [this, worker_index] { KillWorkerNow(worker_index); });
}

void VineSim::KillWorkerNow(std::size_t worker_index) {
  if (done_) return;  // workload finished: let the event queue drain
  SimWorker& worker = workers_[worker_index];
  if (!worker.alive) return;
  worker.alive = false;
  ++result_.worker_deaths;
  active_libraries_ -= worker.libraries;
  worker.libraries = 0;
  worker.deploying = 0;
  worker.library_free_slots = 0;
  worker.libs.clear();
  affinity_.RemoveWorker(static_cast<core::WorkerId>(worker_index + 1));
  worker.active = 0;
  worker.env = SimWorker::Env::kAbsent;
  // Fire pending env and library waiters: each observes the dead worker
  // and requeues its invocation.  In-flight compute/transfer phases
  // requeue lazily when they observe the generation change.
  auto waiters = std::move(worker.env_waiters);
  worker.env_waiters.clear();
  for (auto& fn : waiters) fn();
  auto lib_waiters = std::move(worker.library_waiters);
  worker.library_waiters.clear();
  for (auto& fn : lib_waiters) fn();
  sim_.After(config_.worker_respawn_delay_s, [this, worker_index] {
    if (done_) return;
    SimWorker& w = workers_[worker_index];
    w.alive = true;
    ++w.generation;
    w.free_slots = w.slots;
    w.active = 0;
    // Churn chains re-arm on respawn; one-shot scheduled kills do not.
    if (config_.worker_mean_lifetime_s > 0.0) ScheduleDeath(worker_index);
    PumpDispatch();
  });
}

}  // namespace vinelet::sim
