#include "sim/workload.hpp"

#include <cmath>

namespace vinelet::sim {

std::vector<InvocationSpec> BuildLnniWorkload(const WorkloadCosts& costs,
                                              std::size_t n) {
  std::vector<InvocationSpec> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back({&costs, 1.0});
  return out;
}

std::vector<InvocationSpec> BuildExamolWorkload(
    const WorkloadCosts& simulate, const WorkloadCosts& train,
    const WorkloadCosts& infer, std::size_t n, Rng& rng) {
  std::vector<InvocationSpec> out;
  out.reserve(n);
  // Active-learning round structure: a batch of PM7 simulations gathers
  // data, then the surrogate retrains and scores the candidate pool.
  const std::size_t kRound = 64;  // simulations per round
  const double kSigma = 0.15;     // per-molecule cost variation
  const double kMu = -kSigma * kSigma / 2.0;  // unit-mean lognormal
  std::size_t in_round = 0;
  while (out.size() < n) {
    if (in_round < kRound) {
      out.push_back({&simulate, rng.LogNormal(kMu, kSigma)});
      ++in_round;
    } else {
      out.push_back({&train, rng.LogNormal(kMu, kSigma * 0.5)});
      if (out.size() < n)
        out.push_back({&infer, rng.LogNormal(kMu, kSigma * 0.5)});
      in_round = 0;
    }
  }
  return out;
}

}  // namespace vinelet::sim
