#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>

namespace vinelet::sim {

std::vector<InvocationSpec> BuildLnniWorkload(const WorkloadCosts& costs,
                                              std::size_t n) {
  std::vector<InvocationSpec> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back({&costs, 1.0, 0, 0.0, 0, {}});
  return out;
}

std::vector<InvocationSpec> BuildZipfWorkload(const WorkloadCosts& costs,
                                              std::size_t n,
                                              std::size_t num_libraries,
                                              double s, double exec_sigma,
                                              double arrival_rate, Rng& rng) {
  // Inverse-CDF sampling over the (small) finite Zipf support; the CDF is
  // built once and binary-searched per draw.
  const std::size_t libraries = std::max<std::size_t>(1, num_libraries);
  std::vector<double> cdf(libraries);
  double total = 0.0;
  for (std::size_t rank = 0; rank < libraries; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
    cdf[rank] = total;
  }
  const double mu = -exec_sigma * exec_sigma / 2.0;  // unit-mean lognormal
  std::vector<InvocationSpec> out;
  out.reserve(n);
  double arrival = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.NextDouble() * total;
    const std::size_t lib = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    const double scale =
        exec_sigma > 0.0 ? rng.LogNormal(mu, exec_sigma) : 1.0;
    if (arrival_rate > 0.0)  // Poisson stream: exponential interarrivals
      arrival += -std::log(1.0 - rng.NextDouble()) / arrival_rate;
    out.push_back(
        {&costs, scale, std::min(lib, libraries - 1), arrival, 0, {}});
  }
  return out;
}

std::vector<InvocationSpec> BuildExamolWorkload(
    const WorkloadCosts& simulate, const WorkloadCosts& train,
    const WorkloadCosts& infer, std::size_t n, Rng& rng) {
  std::vector<InvocationSpec> out;
  out.reserve(n);
  // Active-learning round structure: a batch of PM7 simulations gathers
  // data, then the surrogate retrains and scores the candidate pool.
  const std::size_t kRound = 64;  // simulations per round
  const double kSigma = 0.15;     // per-molecule cost variation
  const double kMu = -kSigma * kSigma / 2.0;  // unit-mean lognormal
  std::size_t in_round = 0;
  while (out.size() < n) {
    if (in_round < kRound) {
      out.push_back({&simulate, rng.LogNormal(kMu, kSigma), 0, 0.0, 0, {}});
      ++in_round;
    } else {
      out.push_back({&train, rng.LogNormal(kMu, kSigma * 0.5), 0, 0.0, 0, {}});
      if (out.size() < n)
        out.push_back(
            {&infer, rng.LogNormal(kMu, kSigma * 0.5), 0, 0.0, 0, {}});
      in_round = 0;
    }
  }
  return out;
}

}  // namespace vinelet::sim
