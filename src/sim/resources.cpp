#include "sim/resources.hpp"

#include <algorithm>

namespace vinelet::sim {

double FairShareResource::RatePerFlow() const noexcept {
  if (flows_.empty()) return 0.0;
  const double share = capacity_ / static_cast<double>(flows_.size());
  if (per_stream_cap_ > 0.0) return std::min(share, per_stream_cap_);
  return share;
}

void FairShareResource::AdvanceTo(double now) {
  const double elapsed = now - last_update_;
  last_update_ = now;
  if (elapsed <= 0.0 || flows_.empty()) return;
  const double progressed = elapsed * RatePerFlow();
  for (auto& [_, flow] : flows_) {
    const double actual = std::min(progressed, flow.remaining);
    flow.remaining -= actual;
    served_ += actual;
  }
}

void FairShareResource::Transfer(double bytes, std::function<void()> on_done) {
  AdvanceTo(sim_->Now());
  if (bytes <= 0.0) {
    // Zero-byte transfers complete immediately (still asynchronously, so
    // callers observe consistent ordering).
    sim_->After(0.0, std::move(on_done));
    return;
  }
  flows_.emplace(next_flow_id_++, Flow{bytes, std::move(on_done)});
  Reschedule();
}

void FairShareResource::Reschedule() {
  ++generation_;
  if (flows_.empty()) return;
  double min_remaining = flows_.begin()->second.remaining;
  for (const auto& [_, flow] : flows_)
    min_remaining = std::min(min_remaining, flow.remaining);
  const double rate = RatePerFlow();
  const double eta = rate > 0 ? min_remaining / rate : 0.0;
  const std::uint64_t generation = generation_;
  sim_->After(eta, [this, generation] { OnWake(generation); });
}

void FairShareResource::OnWake(std::uint64_t generation) {
  if (generation != generation_) return;  // superseded by a newer schedule
  AdvanceTo(sim_->Now());
  // Complete every drained flow (equal timestamps finish together).  The
  // threshold is rate-relative: any residue representing less than a
  // nanosecond of transfer counts as done.  An absolute byte threshold
  // would livelock here — a residue can be larger than it while the
  // corresponding wake delay underflows double time resolution
  // (now + eta == now), freezing virtual time.
  const double epsilon = std::max(1e-9, RatePerFlow() * 1e-9);
  std::vector<std::function<void()>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining <= epsilon) {
      done.push_back(std::move(it->second.on_done));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  Reschedule();
  for (auto& fn : done) fn();
}

void IopsBucket::Acquire(double ops, std::function<void()> on_done) {
  const double now = sim_->Now();
  const double start = std::max(now, next_free_);
  const double duration = rate_ > 0 ? ops / rate_ : 0.0;
  next_free_ = start + duration;
  sim_->At(next_free_, std::move(on_done));
}

void SerialServer::Enqueue(double service_seconds,
                           std::function<void()> on_done) {
  const double now = sim_->Now();
  const double start = std::max(now, busy_until_);
  busy_until_ = start + service_seconds;
  busy_time_ += service_seconds;
  sim_->At(busy_until_, std::move(on_done));
}

}  // namespace vinelet::sim
