// Discrete-event simulation kernel.
//
// The evaluation's cluster-scale experiments (150 workers x 100k
// invocations) cannot run in real time on one machine, so they execute in
// virtual time on this kernel.  Determinism is a hard requirement (tested):
// events at equal timestamps fire in scheduling order, and all randomness
// comes from seeded vinelet::Rng streams.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace vinelet::sim {

class Simulation {
 public:
  using EventFn = std::function<void()>;

  double Now() const noexcept { return now_; }

  /// Schedules at an absolute virtual time (>= Now, clamped otherwise).
  void At(double time, EventFn fn);

  /// Schedules `delay` seconds from now (negative clamps to now).
  void After(double delay, EventFn fn) { At(now_ + delay, std::move(fn)); }

  /// Runs until the event queue is empty.
  void Run();

  /// Runs until the queue is empty or virtual time would exceed `deadline`;
  /// events after the deadline remain queued.
  void RunUntil(double deadline);

  std::uint64_t events_processed() const noexcept { return processed_; }
  bool Empty() const noexcept { return queue_.empty(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace vinelet::sim
