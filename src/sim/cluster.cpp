#include "sim/cluster.hpp"

#include <algorithm>

namespace vinelet::sim {

std::vector<MachineGroup> PaperMachineGroups() {
  return {
      {"d32cepyc[001-070]", "AMD EPYC 7532 32-Core", 58, 4.4, 256},
      {"d32cepyc[076-260]", "AMD EPYC 7543 32-Core", 117, 5.4, 256},
      {"qa-a10-[001-022]", "Intel Xeon Gold 6326", 14, 1.9, 256},
      {"qa-a40-[001-010]", "Intel Xeon Gold 6326", 7, 1.9, 256},
      {"sa-rtx6ka-[001-005]", "Intel Xeon Silver 4316", 5, 1.9, 256},
  };
}

std::vector<SimWorkerNode> SampleCluster(const ClusterConfig& config,
                                         Rng& rng) {
  const auto groups = PaperMachineGroups();
  const double kBaselineGflops = groups[0].gflops;

  // Group weights: explicit override or Table 3 machine counts.
  std::vector<double> weights;
  if (!config.group_fractions.empty()) {
    weights = config.group_fractions;
    weights.resize(groups.size(), 0.0);
  } else {
    for (const auto& group : groups)
      weights.push_back(static_cast<double>(group.machines));
  }
  double total_weight = 0.0;
  for (double w : weights) total_weight += w;

  // Deterministic proportional allocation (largest remainder), then a
  // shuffled assignment so worker index does not correlate with group.
  std::vector<std::size_t> counts(groups.size(), 0);
  std::size_t assigned = 0;
  std::vector<std::pair<double, std::size_t>> remainders;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const double exact =
        static_cast<double>(config.num_workers) * weights[g] / total_weight;
    counts[g] = static_cast<std::size_t>(exact);
    assigned += counts[g];
    remainders.emplace_back(exact - static_cast<double>(counts[g]), g);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t i = 0; assigned < config.num_workers; ++i, ++assigned)
    ++counts[remainders[i % remainders.size()].second];

  std::vector<SimWorkerNode> workers;
  workers.reserve(config.num_workers);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t i = 0; i < counts[g]; ++i) {
      SimWorkerNode node;
      node.group = g;
      node.speed = groups[g].gflops / kBaselineGflops;
      node.dram_gb = groups[g].dram_gb;
      workers.push_back(node);
    }
  }
  rng.Shuffle(workers);
  for (std::size_t i = 0; i < workers.size(); ++i) workers[i].index = i;
  return workers;
}

}  // namespace vinelet::sim
