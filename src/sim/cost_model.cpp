#include "sim/cost_model.hpp"

#include <algorithm>

namespace vinelet::sim {

double ChunkedHopFinishS(double source_done_s, double start_s,
                         double blob_seconds, double chunk_seconds) {
  return std::max(source_done_s + chunk_seconds, start_s + blob_seconds);
}

WorkloadCosts LnniCosts(int inferences) {
  WorkloadCosts costs;  // defaults are the 16-inference LNNI calibration
  costs.exec_cpu_s = 3.08 * static_cast<double>(inferences) / 16.0;
  return costs;
}

WorkloadCosts TrivialFunctionCosts() {
  WorkloadCosts costs;
  // A minimal Poncho environment (python + a few support packages).
  costs.env_packed_bytes = 50.0 * 1024 * 1024;
  costs.env_unpacked_bytes = 300.0 * 1024 * 1024;
  costs.unpack_cpu_s = 18.5;  // Table 2: ~20 s per-worker setup either mode
  costs.context_setup_cpu_s = 0.8;
  costs.context_rebuild_cpu_s = 0.02;
  costs.deserialize_s = 0.015;
  costs.invocation_overhead_s = 2.0e-4;
  costs.l1_fs_bytes = 5.0 * 1024 * 1024;
  costs.l1_fs_ops = 300;
  costs.l2_local_bytes = 4.0 * 1024 * 1024;
  costs.exec_cpu_s = 8.9e-8;  // Table 2: one addition
  costs.exec_noise_sigma = 0.05;
  costs.straggler_prob = 0.0;
  costs.contention_beta_context = 0.05;
  costs.contention_beta_exec = 0.05;
  // Table 2: 0.19 s per remote task, 2.52 ms per remote invocation,
  // measured end to end against one worker.
  costs.manager_l1 = {0.100, 0.065};
  costs.manager_l2 = {0.100, 0.065};
  costs.manager_l3 = {0.0015, 0.0009};
  costs.cores_per_invocation = 1;
  return costs;
}

namespace {

WorkloadCosts ExamolBaseCosts() {
  WorkloadCosts costs;
  // Quantum-chemistry conda stack: smaller than the TF stack but with the
  // same import-storm behaviour on a shared filesystem.
  costs.env_packed_bytes = 410.0 * 1024 * 1024;
  costs.env_unpacked_bytes = 2.1 * 1024 * 1024 * 1024;
  costs.unpack_cpu_s = 11.0;
  costs.context_setup_cpu_s = 4.0;
  costs.context_rebuild_cpu_s = 5.0;
  costs.deserialize_s = 0.6;
  costs.invocation_overhead_s = 0.002;
  // ExaMol tasks are long, so per-task L1 overhead is dominated by pulling
  // the environment and inputs through the shared FS under 1,200-way
  // concurrency.
  costs.l1_fs_bytes = 400.0 * 1024 * 1024;
  costs.l1_fs_latency_s = 140.0;  // cold rdkit/sklearn import round trips
  costs.l1_fs_ops = 4000;
  costs.l2_local_bytes = 200.0 * 1024 * 1024;
  costs.contention_beta_context = 0.6;
  costs.contention_beta_exec = 0.12;
  costs.exec_noise_sigma = 0.12;
  costs.straggler_prob = 0.001;
  costs.straggler_factor = 2.0;
  costs.manager_l1 = {0.074, 0.006};
  costs.manager_l2 = {0.033, 0.006};
  costs.manager_l3 = {0.003, 0.001};
  costs.cores_per_invocation = 4;  // §4.2: 8 slots per 32-core worker
  return costs;
}

}  // namespace

WorkloadCosts ExamolSimulateCosts() {
  WorkloadCosts costs = ExamolBaseCosts();
  costs.exec_cpu_s = 295.0;  // PM7 geometry/energy calculation
  return costs;
}

WorkloadCosts ExamolTrainCosts() {
  WorkloadCosts costs = ExamolBaseCosts();
  costs.exec_cpu_s = 170.0;  // scikit-learn surrogate retrain
  return costs;
}

WorkloadCosts ExamolInferCosts() {
  WorkloadCosts costs = ExamolBaseCosts();
  costs.exec_cpu_s = 60.0;  // batch inference over candidate molecules
  return costs;
}

}  // namespace vinelet::sim
