#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vinelet::telemetry {

std::size_t ThreadShard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

double Histogram::BucketBound(std::size_t i) noexcept {
  return kFirstBound * std::pow(2.0, static_cast<double>(i));
}

namespace {

std::size_t BucketFor(double value) noexcept {
  if (!(value > Histogram::kFirstBound)) return 0;
  // Index of the first power-of-two bound >= value.
  const int exponent = static_cast<int>(
      std::ceil(std::log2(value / Histogram::kFirstBound) - 1e-12));
  if (exponent < 0) return 0;
  if (static_cast<std::size_t>(exponent) >= Histogram::kBuckets)
    return Histogram::kBuckets;  // overflow cell
  return static_cast<std::size_t>(exponent);
}

void AtomicMin(std::atomic<double>& cell, double value) noexcept {
  double current = cell.load(std::memory_order_relaxed);
  while (value < current && !cell.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& cell, double value) noexcept {
  double current = cell.load(std::memory_order_relaxed);
  while (value > current && !cell.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Observe(double value) noexcept {
  if (std::isnan(value)) return;
  if (value < 0) value = 0;
  Shard& shard = shards_[ThreadShard()];
  shard.counts[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  double sum = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(sum, sum + value,
                                          std::memory_order_relaxed)) {
  }
  if (!any_.exchange(true, std::memory_order_relaxed)) {
    // First observation seeds min/max; racing observers converge via the
    // CAS loops below.
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  std::array<std::uint64_t, kBuckets + 1> totals{};
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i <= kBuckets; ++i)
      totals[i] += shard.counts[i].load(std::memory_order_relaxed);
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
  }
  // The count is derived from the buckets so the snapshot is consistent by
  // construction even while observers are running: buckets carry cumulative
  // (observations <= bound) counts, ending exactly at `count`.
  for (std::size_t i = 0; i <= kBuckets; ++i) {
    snapshot.count += totals[i];
    if (totals[i] == 0) continue;
    const double bound = i < kBuckets
                             ? BucketBound(i)
                             : std::numeric_limits<double>::infinity();
    snapshot.buckets.emplace_back(bound, snapshot.count);
  }
  if (snapshot.count > 0) {
    snapshot.min = min_.load(std::memory_order_relaxed);
    snapshot.max = max_.load(std::memory_order_relaxed);
  }
  return snapshot;
}

void Histogram::Reset() noexcept {
  for (auto& shard : shards_) {
    for (auto& cell : shard.counts) cell.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  any_.store(false, std::memory_order_relaxed);
}

double InterpolateBucketQuantile(
    const std::vector<std::pair<double, std::uint64_t>>& cumulative,
    std::uint64_t total, double q, double min_value,
    double max_value) noexcept {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  double before = 0.0;
  for (const auto& [bound, cum] : cumulative) {
    const auto in_bucket = static_cast<double>(cum) - before;
    if (in_bucket <= 0.0) continue;
    // The covering bucket is the first whose cumulative count reaches the
    // rank; rank exactly at `before` (q == 0, or a boundary shared with an
    // empty run of buckets) belongs to this bucket's lower edge.
    if (static_cast<double>(cum) >= rank) {
      double lower;
      double upper;
      if (std::isinf(bound)) {
        lower = Histogram::BucketBound(Histogram::kBuckets - 1);
        upper = std::max(max_value, lower);
      } else {
        lower = bound <= Histogram::kFirstBound ? 0.0 : bound / 2.0;
        upper = bound;
      }
      const double frac =
          std::clamp((rank - before) / in_bucket, 0.0, 1.0);
      const double value = lower + frac * (upper - lower);
      return std::clamp(value, min_value, max_value);
    }
    before = static_cast<double>(cum);
  }
  return max_value;
}

double HistogramSnapshot::Quantile(double q) const noexcept {
  return InterpolateBucketQuantile(buckets, count, q, min, max);
}

// ---------------------------------------------------------------------------
// Snapshot accessors.
// ---------------------------------------------------------------------------

std::uint64_t MetricsSnapshot::CounterValue(const std::string& name,
                                            std::uint64_t fallback) const {
  auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

double MetricsSnapshot::GaugeValue(const std::string& name,
                                   double fallback) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? fallback : it->second;
}

const HistogramSnapshot* MetricsSnapshot::HistogramFor(
    const std::string& name) const {
  auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_)
    snapshot.counters.emplace(name, counter->Value());
  for (const auto& [name, gauge] : gauges_)
    snapshot.gauges.emplace(name, gauge->Value());
  for (const auto& [name, histogram] : histograms_)
    snapshot.histograms.emplace(name, histogram->Snapshot());
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, counter] : counters_) counter->Reset();
  for (auto& [_, gauge] : gauges_) gauge->Set(0.0);
  for (auto& [_, histogram] : histograms_) histogram->Reset();
}

}  // namespace vinelet::telemetry
