// Telemetry exporters.
//
//  * ToChromeTrace — Chrome trace_event JSON ("X" complete events, one track
//    per worker/library/manager) loadable in chrome://tracing and Perfetto.
//  * SpansToCsv — flat CSV of the same spans for spreadsheet post-processing.
//  * MetricsToJson — machine-readable dump of a MetricsSnapshot (benches
//    write this next to their printed tables).
//  * ValidateChromeTrace — structural check used by tests and bench
//    harnesses: valid JSON, every event a closed span (ph "X" with a
//    non-negative dur, or balanced B/E pairs), a flow record, or a counter
//    sample ("C" with an args object), and per-track timestamps monotone
//    non-decreasing.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace vinelet::telemetry {

/// Renders spans as Chrome trace_event JSON.  Events are sorted by start
/// time; tracks get stable tids in first-seen order plus thread_name
/// metadata.  Timestamps are microseconds (Chrome's unit).
///
/// Spans that carry causal identity export their trace_id/span_id/
/// parent_span_id in args, and every parent→child link whose parent span is
/// present in the same export becomes a flow arrow: a "s" (flow start)
/// record on the parent's track at the parent's start plus a "f" (flow end,
/// bp:"e") record on the child's track at the child's start, with the
/// child's span_id as the flow id — so chrome://tracing draws one connected
/// story per trace across manager, relay, and worker tracks.
std::string ToChromeTrace(const std::vector<SpanRecord>& spans,
                          std::string_view process_name = "vinelet");

/// "track,category,name,id,start_s,end_s,duration_s" rows, sorted by start.
std::string SpansToCsv(const std::vector<SpanRecord>& spans);

/// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,mean,
/// min,max,p50,p99}}}
std::string MetricsToJson(const MetricsSnapshot& snapshot);

/// What ValidateChromeTrace verified, for test assertions.
struct TraceCheck {
  std::size_t events = 0;    // "X"/"B"/"E" events (metadata excluded)
  std::size_t tracks = 0;    // distinct (pid, tid) pairs
  std::size_t flows = 0;     // "s"/"t"/"f" flow records
  std::size_t counters = 0;  // "C" counter samples (time-series export)
};

/// Parses `json` with a strict JSON parser and checks the trace_event
/// structural invariants described above.  Returns kInvalidArgument with a
/// description on any violation.
Result<TraceCheck> ValidateChromeTrace(std::string_view json);

/// Checks that `json` parses under the same strict JSON grammar the trace
/// validator uses (flight-recorder dumps, metrics files).  Returns
/// kInvalidArgument with a position + description on any violation.
Status ValidateJson(std::string_view json);

/// Writes `content` to `path` (truncating).  Used by benches for
/// BENCH_*.json and *.trace.json artifacts.
Status WriteStringToFile(const std::string& path, std::string_view content);

/// Escapes a string for embedding in JSON (no surrounding quotes).
std::string JsonEscape(std::string_view text);

}  // namespace vinelet::telemetry
