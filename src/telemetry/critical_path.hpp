// Trace-driven critical-path attribution.
//
// Spans recorded by SpanTracer carry causal identity (trace_id, span_id,
// parent_span_id); this analyzer reconstructs each trace's span DAG and
// answers "where did this trace's wall-clock time go?" mechanically instead
// of by eyeballing chrome://tracing:
//
//  * per trace, every instant of [first span start, last span end] is
//    attributed to the *most specific* span covering it (the latest-started
//    cover — children start after the parents that caused them), so
//    overlapping parent/child spans never double-count; instants no span
//    covers are attributed to "idle" (queueing, scheduling gaps);
//  * the critical chain is recovered by walking parent links back from the
//    last-finishing span — the path whose phases bound the trace's makespan;
//  * per run, traces aggregate into a blame report: seconds and share per
//    lifecycle phase and per track (worker/manager/link), plus the worst
//    traces by makespan.
//
// On non-overlapping span streams (the DES emits these) the per-phase
// attribution equals AggregatePhases' sums exactly; bench_table5_breakdown
// cross-checks the two code paths within tolerance on every run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/span.hpp"

namespace vinelet::telemetry {

/// Attribution key for time no span covers (dispatch queues, event loop
/// gaps, blocked waits outside any recorded phase).
inline constexpr const char* kIdlePhase = "idle";

/// One hop of a trace's critical chain, root first.
struct PathStep {
  std::string name;   // phase name
  std::string track;  // "manager", "worker-3", ...
  std::uint64_t span_id = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  /// Seconds of the trace timeline attributed to this span (self time:
  /// its duration minus the parts covered by more specific spans).
  double self_s = 0.0;
};

/// Blame for one trace: makespan split across phases and tracks.
struct TraceBlame {
  std::uint64_t trace_id = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  std::size_t spans = 0;
  std::map<std::string, double> phase_s;  // includes kIdlePhase
  std::map<std::string, double> track_s;  // idle time lands on no track
  std::vector<PathStep> critical_path;    // root -> last-finishing span

  double Makespan() const noexcept { return end_s - start_s; }
};

/// Per-run aggregate over every trace in a span stream.
struct BlameReport {
  std::size_t traces = 0;
  std::size_t spans = 0;          // spans carrying a trace_id
  std::size_t orphan_spans = 0;   // spans without one (not attributed)
  double total_makespan_s = 0.0;  // sum of per-trace makespans
  std::map<std::string, double> phase_s;
  std::map<std::string, double> track_s;
  /// The worst traces by makespan, descending (capped by the analyzer's
  /// `max_worst` option).
  std::vector<TraceBlame> worst;

  double PhaseSeconds(const std::string& phase) const;
  /// phase_s / total_makespan_s (0 when the report is empty).
  double PhaseShare(const std::string& phase) const;
};

class CriticalPathAnalyzer {
 public:
  struct Options {
    /// Traces kept verbatim in BlameReport::worst.
    std::size_t max_worst = 8;
  };

  CriticalPathAnalyzer() = default;
  explicit CriticalPathAnalyzer(Options options) : options_(options) {}

  /// Blames one trace's spans (all must share a trace_id; zero ids are
  /// skipped and counted nowhere).
  TraceBlame AnalyzeTrace(const std::vector<SpanRecord>& spans) const;

  /// Partitions `spans` by trace_id and aggregates every trace's blame.
  BlameReport Analyze(const std::vector<SpanRecord>& spans) const;

 private:
  Options options_;
};

/// Machine-readable rendering, the CI artifact schema
/// (scripts/check_critical_path.py validates it):
/// {"traces":N,"spans":N,"orphan_spans":N,"total_makespan_s":..,
///  "phases":{name:{"seconds":..,"share":..}},"tracks":{name:..},
///  "worst":[{"trace_id":..,"makespan_s":..,"phases":{..},
///            "critical_path":[{"name":..,"track":..,"start_s":..,
///                              "end_s":..,"self_s":..}]}]}
std::string BlameReportToJson(const BlameReport& report);

}  // namespace vinelet::telemetry
