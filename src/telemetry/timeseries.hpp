// Windowed time-series metrics: a sampler that periodically snapshots a
// MetricsRegistry and turns the cumulative counters/gauges/histograms into
// fixed-width windows — per-window deltas, rates, and per-window
// p50/p99/p999 derived from cumulative-bucket diffs — kept in a bounded
// ring.
//
// The store itself is clock-agnostic: SampleAt(now_s) takes an explicit
// timestamp, so the real runtime drives it from a background thread on the
// shared wall clock (BackgroundSampler below) while the DES drives the very
// same store at virtual-time window boundaries — and both export the
// identical JSON-lines schema (one window object per line) plus Chrome
// trace_event counter ("C") records for chrome://tracing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "telemetry/metrics.hpp"

namespace vinelet::telemetry {

struct TimeSeriesConfig {
  /// Nominal window width in seconds (wall or virtual).  SampleAt stamps
  /// windows with their *actual* bounds, so a late sampler tick widens the
  /// window instead of corrupting the rate.
  double window_s = 1.0;
  /// Windows retained in the ring; the oldest windows fall off first.
  std::size_t capacity = 600;
};

/// One counter inside one window.
struct CounterWindow {
  std::uint64_t total = 0;  // cumulative at window end
  std::uint64_t delta = 0;  // increments inside the window
  double rate = 0.0;        // delta / window width
};

/// One histogram inside one window: per-window count and quantiles from the
/// cumulative-bucket diff against the previous sample.
struct HistogramWindow {
  std::uint64_t total_count = 0;  // cumulative at window end
  std::uint64_t delta_count = 0;  // observations inside the window
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

struct TimeSeriesWindow {
  std::uint64_t seq = 0;  // 0-based window index since the first sample
  double start_s = 0.0;
  double end_s = 0.0;
  std::map<std::string, CounterWindow> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramWindow> histograms;

  double Width() const noexcept { return end_s - start_s; }
};

/// Per-window quantile from two cumulative snapshots of one histogram:
/// the distribution of observations that landed between `prev` and `cur`
/// (pass an empty/default `prev` for "since the beginning").  Exposed for
/// tests and for callers diffing their own snapshots.
double WindowQuantile(const HistogramSnapshot& cur,
                      const HistogramSnapshot& prev, double q) noexcept;

/// Bounded ring of metric windows over one registry.  Thread-safe: the
/// sampler thread (or DES event) calls SampleAt while readers snapshot or
/// export concurrently.
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(const MetricsRegistry* registry,
                           TimeSeriesConfig config = {});

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  const TimeSeriesConfig& config() const noexcept { return config_; }

  /// Takes one sample at `now_s` and closes the window since the previous
  /// sample.  The very first call only seeds the baseline snapshot and
  /// produces no window.  Calls with now_s <= the previous sample time are
  /// ignored (a stopped clock cannot produce a zero-width window).
  void SampleAt(double now_s);

  /// Copies the retained windows, oldest first.
  std::vector<TimeSeriesWindow> Windows() const;

  /// Windows ever closed (>= capacity means the ring has dropped some).
  std::uint64_t samples() const noexcept {
    return sampled_.load(std::memory_order_relaxed);
  }

  /// One JSON object per line, oldest window first:
  /// {"seq":0,"start_s":..,"end_s":..,"counters":{name:{"total":..,"delta":
  /// ..,"rate":..}},"gauges":{name:..},"histograms":{name:{"count":..,
  /// "delta":..,"p50":..,"p99":..,"p999":..}}}
  std::string ToJsonLines() const;

  /// Chrome trace_event counter records: one "C" event per (window, metric)
  /// with counter rates and gauge values, mergeable into a span trace for
  /// chrome://tracing's counter tracks.  Returns a complete
  /// {"traceEvents":[...]} document.
  std::string ToChromeCounters(std::string_view process_name = "vinelet") const;

 private:
  const MetricsRegistry* registry_;
  TimeSeriesConfig config_;

  mutable std::mutex mu_;
  bool has_baseline_ = false;
  double prev_t_ = 0.0;
  MetricsSnapshot prev_;
  std::uint64_t next_seq_ = 0;
  std::deque<TimeSeriesWindow> ring_;
  std::atomic<std::uint64_t> sampled_{0};
};

/// Drives a TimeSeriesStore from a dedicated thread on a real clock: one
/// SampleAt(clock->Now()) every `store->config().window_s` seconds.  Start
/// seeds the baseline immediately; Stop takes a final sample so the tail
/// window is never lost.  The real runtime's counterpart of the DES's
/// virtual-time sampling events.
class BackgroundSampler {
 public:
  BackgroundSampler(TimeSeriesStore* store, const Clock* clock)
      : store_(store), clock_(clock) {}
  ~BackgroundSampler() { Stop(); }

  BackgroundSampler(const BackgroundSampler&) = delete;
  BackgroundSampler& operator=(const BackgroundSampler&) = delete;

  void Start();
  void Stop();
  bool running() const noexcept { return running_; }

 private:
  TimeSeriesStore* store_;
  const Clock* clock_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_ = false;
};

}  // namespace vinelet::telemetry
