#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "telemetry/export.hpp"

namespace vinelet::telemetry {

namespace {

void CopyTruncated(char* dst, std::size_t dst_size, std::string_view src) {
  const std::size_t n = std::min(src.size(), dst_size - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void FlightRecorder::Record(std::string_view tag, std::string_view detail,
                            std::uint64_t trace_id, std::uint64_t a,
                            std::uint64_t b) {
  FlightEvent event;
  event.t_s = clock_ != nullptr ? clock_->Now() : 0.0;
  event.trace_id = trace_id;
  event.a = a;
  event.b = b;
  CopyTruncated(event.tag, sizeof(event.tag), tag);
  CopyTruncated(event.detail, sizeof(event.detail), detail);

  const std::uint64_t ticket = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % capacity_];
  // Seqlock write: odd marks in-progress; the release fence orders the
  // odd marker before the data writes as observed by an acquire reader.
  slot.seq.store(2 * ticket + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.event = event;
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Dump() const {
  const std::uint64_t end = cursor_.load(std::memory_order_acquire);
  const std::uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t ticket = begin; ticket < end; ++ticket) {
    const Slot& slot = slots_[ticket % capacity_];
    const std::uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
    if (seq1 != 2 * ticket + 2) continue;  // unpublished, torn, or lapped
    FlightEvent copy = slot.event;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq1) continue;
    out.push_back(copy);
  }
  return out;
}

std::string FlightRecorder::DumpJson() const {
  const auto events = Dump();
  std::string out = "{\n\"capacity\": " + std::to_string(capacity_) +
                    ",\n\"recorded\": " + std::to_string(recorded()) +
                    ",\n\"events\": [";
  bool first = true;
  char number[64];
  for (const auto& event : events) {
    out += first ? "\n" : ",\n";
    first = false;
    std::snprintf(number, sizeof(number), "%.9f", event.t_s);
    out += "{\"t_s\":";
    out += number;
    out += ",\"tag\":\"" + JsonEscape(event.tag) + "\",\"detail\":\"" +
           JsonEscape(event.detail) +
           "\",\"trace_id\":" + std::to_string(event.trace_id) +
           ",\"a\":" + std::to_string(event.a) +
           ",\"b\":" + std::to_string(event.b) + "}";
  }
  out += "\n]\n}\n";
  return out;
}

std::string FlightRecorder::DumpOnEnv(std::string_view tag) const {
  const char* dir = std::getenv("VINELET_FLIGHT_DUMP");
  if (dir == nullptr || dir[0] == '\0') return "";
  std::string safe;
  for (const char c : tag) {
    safe += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
             c == '_')
                ? c
                : '-';
  }
  const std::string path = std::string(dir) + "/flight-" + safe + ".json";
  (void)WriteStringToFile(path, DumpJson());
  return path;
}

}  // namespace vinelet::telemetry
