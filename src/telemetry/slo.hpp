// Declarative SLO monitoring for invocation latency and goodput.
//
// Operators declare per-library targets (latency bound at a percentile of
// completions, minimum goodput) in SchedulerConfig-style structs; the
// monitor keeps a sliding window of completion samples per library and
// answers, at any instant, what fraction of the window violates the latency
// bound and how fast the error budget is burning:
//
//   burn_rate = violation_fraction / (1 - target_fraction)
//
// burn_rate 1.0 means violations arrive exactly at the budgeted rate; above
// 1.0 the SLO will be breached if the window is representative.  Snapshots
// ride inside ClusterStatus so vinelet-status / vinelet-top render them and
// CLI exit codes can gate on Breached().
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace vinelet::telemetry {

/// One declarative target.  `library` == "*" applies to every library that
/// has no more specific target.
struct SloTarget {
  std::string library = "*";
  /// Completions slower than this violate the SLO (<= 0 disables the
  /// latency objective).
  double latency_target_s = 0.0;
  /// Fraction of completions that must meet the latency target.
  double target_fraction = 0.99;
  /// Minimum successful completions per second over the window (<= 0
  /// disables the goodput objective).
  double min_goodput_per_s = 0.0;
  /// Sliding-window length in seconds.
  double window_s = 30.0;
};

struct SloConfig {
  std::vector<SloTarget> targets;

  bool Enabled() const noexcept { return !targets.empty(); }
};

/// Point-in-time evaluation of one library against its target.
struct SloSnapshot {
  std::string library;
  double latency_target_s = 0.0;
  double target_fraction = 0.99;
  double min_goodput_per_s = 0.0;
  double window_s = 30.0;
  std::size_t samples = 0;     // completions in the window
  std::size_t violations = 0;  // failed or slower than the latency target
  double violation_fraction = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double goodput_per_s = 0.0;  // successful completions / window_s
  double burn_rate = 0.0;
  bool latency_breached = false;
  bool goodput_breached = false;

  bool Breached() const noexcept { return latency_breached || goodput_breached; }
};

/// Sliding-window SLO evaluator.  Record() is called from the manager's
/// event loop on every invocation resolution; Snapshot() from the status
/// path.  Internally mutex-guarded — both paths are off the worker hot
/// path.
class SloMonitor {
 public:
  explicit SloMonitor(SloConfig config);

  bool Enabled() const noexcept { return !config_.targets.empty(); }

  /// Records one resolved invocation.  `ok` is false for permanent
  /// failures (they always count as violations).
  void Record(const std::string& library, double latency_s, bool ok,
              double now_s);

  /// Evaluates every library seen so far (plus every explicitly targeted
  /// library, so a silent library still reports goodput 0), sorted by name.
  std::vector<SloSnapshot> Snapshot(double now_s) const;

 private:
  struct Sample {
    double at_s;
    double latency_s;
    bool ok;
  };

  const SloTarget& TargetFor(const std::string& library) const;

  SloConfig config_;
  SloTarget default_target_;
  mutable std::mutex mu_;
  mutable std::map<std::string, std::deque<Sample>> windows_;
};

}  // namespace vinelet::telemetry
