// The unified telemetry handle: one metrics registry + one span tracer
// sharing one wall clock.
//
// Ownership model: whoever runs the show (a bench, a test, an application)
// owns a Telemetry and hands the same pointer to ManagerConfig,
// FactoryConfig/WorkerConfig, and SimConfig — so the manager's counters,
// the workers' cache/unpack metrics, and every component's spans land in one
// registry/tracer and export together.  Components constructed without one
// fall back to a private instance, so `Manager::metrics()` keeps working
// unconfigured.
//
// The tracer starts disabled; call `tracer.SetEnabled(true)` (benches do
// this when VINELET_TRACE is set) before the run you want traced.
#pragma once

#include "common/clock.hpp"
#include "telemetry/export.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace vinelet::telemetry {

struct Telemetry {
  Telemetry() : tracer(&clock) { flight.SetClock(&clock); }

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Shared time base for every component's spans (origin = construction).
  WallClock clock;
  MetricsRegistry metrics;
  SpanTracer tracer;
  /// Always-on post-mortem event journal (the tracer stays opt-in).
  FlightRecorder flight;
};

}  // namespace vinelet::telemetry
