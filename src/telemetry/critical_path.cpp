#include "telemetry/critical_path.hpp"

#include <algorithm>
#include <cstdio>

#include "telemetry/export.hpp"

namespace vinelet::telemetry {

namespace {

std::string Num(double value) {
  char out[64];
  std::snprintf(out, sizeof(out), "%.9g", value);
  return out;
}

}  // namespace

double BlameReport::PhaseSeconds(const std::string& phase) const {
  auto it = phase_s.find(phase);
  return it == phase_s.end() ? 0.0 : it->second;
}

double BlameReport::PhaseShare(const std::string& phase) const {
  return total_makespan_s <= 0.0 ? 0.0
                                 : PhaseSeconds(phase) / total_makespan_s;
}

TraceBlame CriticalPathAnalyzer::AnalyzeTrace(
    const std::vector<SpanRecord>& spans) const {
  TraceBlame blame;
  std::vector<const SpanRecord*> traced;
  traced.reserve(spans.size());
  for (const SpanRecord& span : spans) {
    if (span.trace_id == 0) continue;
    traced.push_back(&span);
  }
  if (traced.empty()) return blame;

  blame.trace_id = traced.front()->trace_id;
  blame.spans = traced.size();
  blame.start_s = traced.front()->start_s;
  blame.end_s = traced.front()->end_s;
  for (const SpanRecord* span : traced) {
    blame.start_s = std::min(blame.start_s, span->start_s);
    blame.end_s = std::max(blame.end_s, span->end_s);
  }

  // Elementary intervals: between two adjacent span boundaries the set of
  // covering spans is constant, so each interval is attributed whole to the
  // most specific cover (latest start; later span_id breaks ties — ids are
  // allocated in causal order, so the child wins over a parent that began
  // at the same instant).
  std::vector<double> bounds;
  bounds.reserve(traced.size() * 2);
  for (const SpanRecord* span : traced) {
    bounds.push_back(span->start_s);
    bounds.push_back(span->end_s);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  std::map<std::uint64_t, double> self_s;  // span_id -> attributed seconds
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    const double a = bounds[i];
    const double b = bounds[i + 1];
    const SpanRecord* cover = nullptr;
    for (const SpanRecord* span : traced) {
      if (span->start_s > a || span->end_s < b) continue;
      if (cover == nullptr || span->start_s > cover->start_s ||
          (span->start_s == cover->start_s && span->span_id > cover->span_id))
        cover = span;
    }
    const double width = b - a;
    if (cover == nullptr) {
      blame.phase_s[kIdlePhase] += width;
    } else {
      blame.phase_s[cover->name] += width;
      blame.track_s[cover->track] += width;
      self_s[cover->span_id] += width;
    }
  }

  // Critical chain: parent links walked back from the last-finishing span.
  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord* span : traced)
    if (span->span_id != 0) by_id.emplace(span->span_id, span);
  const SpanRecord* tail = traced.front();
  for (const SpanRecord* span : traced) {
    if (span->end_s > tail->end_s ||
        (span->end_s == tail->end_s && span->span_id > tail->span_id))
      tail = span;
  }
  std::vector<PathStep> path;
  const SpanRecord* step = tail;
  while (step != nullptr && path.size() <= traced.size()) {
    PathStep hop;
    hop.name = step->name;
    hop.track = step->track;
    hop.span_id = step->span_id;
    hop.start_s = step->start_s;
    hop.end_s = step->end_s;
    auto it = self_s.find(step->span_id);
    hop.self_s = it == self_s.end() ? 0.0 : it->second;
    path.push_back(std::move(hop));
    auto parent = by_id.find(step->parent_span_id);
    step = parent == by_id.end() ? nullptr : parent->second;
  }
  blame.critical_path.assign(path.rbegin(), path.rend());
  return blame;
}

BlameReport CriticalPathAnalyzer::Analyze(
    const std::vector<SpanRecord>& spans) const {
  std::map<std::uint64_t, std::vector<SpanRecord>> traces;
  BlameReport report;
  for (const SpanRecord& span : spans) {
    if (span.trace_id == 0) {
      ++report.orphan_spans;
      continue;
    }
    traces[span.trace_id].push_back(span);
  }
  for (const auto& [trace_id, trace_spans] : traces) {
    TraceBlame blame = AnalyzeTrace(trace_spans);
    ++report.traces;
    report.spans += blame.spans;
    report.total_makespan_s += blame.Makespan();
    for (const auto& [phase, seconds] : blame.phase_s)
      report.phase_s[phase] += seconds;
    for (const auto& [track, seconds] : blame.track_s)
      report.track_s[track] += seconds;
    // Keep the worst `max_worst` traces, ascending so the smallest is
    // cheap to displace; sorted descending once at the end.
    if (report.worst.size() < options_.max_worst) {
      report.worst.push_back(std::move(blame));
      std::sort(report.worst.begin(), report.worst.end(),
                [](const TraceBlame& a, const TraceBlame& b) {
                  return a.Makespan() < b.Makespan();
                });
    } else if (!report.worst.empty() &&
               blame.Makespan() > report.worst.front().Makespan()) {
      report.worst.front() = std::move(blame);
      std::sort(report.worst.begin(), report.worst.end(),
                [](const TraceBlame& a, const TraceBlame& b) {
                  return a.Makespan() < b.Makespan();
                });
    }
  }
  std::reverse(report.worst.begin(), report.worst.end());
  return report;
}

namespace {

std::string PhaseMapToJson(const std::map<std::string, double>& phases,
                           double total) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, seconds] : phases) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += JsonEscape(name);
    out += "\":{\"seconds\":" + Num(seconds) +
           ",\"share\":" + Num(total > 0.0 ? seconds / total : 0.0) + "}";
  }
  return out + "}";
}

}  // namespace

std::string BlameReportToJson(const BlameReport& report) {
  std::string out = "{\"traces\":" + std::to_string(report.traces) +
                    ",\"spans\":" + std::to_string(report.spans) +
                    ",\"orphan_spans\":" + std::to_string(report.orphan_spans) +
                    ",\"total_makespan_s\":" + Num(report.total_makespan_s) +
                    ",\"phases\":" +
                    PhaseMapToJson(report.phase_s, report.total_makespan_s) +
                    ",\"tracks\":{";
  bool first = true;
  for (const auto& [track, seconds] : report.track_s) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += JsonEscape(track);
    out += "\":" + Num(seconds);
  }
  out += "},\"worst\":[";
  first = true;
  for (const TraceBlame& blame : report.worst) {
    if (!first) out += ",";
    first = false;
    out += "{\"trace_id\":" + std::to_string(blame.trace_id) +
           ",\"start_s\":" + Num(blame.start_s) +
           ",\"end_s\":" + Num(blame.end_s) +
           ",\"makespan_s\":" + Num(blame.Makespan()) +
           ",\"spans\":" + std::to_string(blame.spans) + ",\"phases\":" +
           PhaseMapToJson(blame.phase_s, blame.Makespan()) +
           ",\"critical_path\":[";
    bool first_hop = true;
    for (const PathStep& hop : blame.critical_path) {
      if (!first_hop) out += ",";
      first_hop = false;
      out += "{\"name\":\"" + JsonEscape(hop.name) + "\",\"track\":\"" +
             JsonEscape(hop.track) +
             "\",\"span_id\":" + std::to_string(hop.span_id) +
             ",\"start_s\":" + Num(hop.start_s) +
             ",\"end_s\":" + Num(hop.end_s) +
             ",\"self_s\":" + Num(hop.self_s) + "}";
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

}  // namespace vinelet::telemetry
