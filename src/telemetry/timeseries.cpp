#include "telemetry/timeseries.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "telemetry/export.hpp"

namespace vinelet::telemetry {

namespace {

std::string Num(double value) {
  char out[64];
  std::snprintf(out, sizeof(out), "%.9g", value);
  return out;
}

}  // namespace

double WindowQuantile(const HistogramSnapshot& cur,
                      const HistogramSnapshot& prev, double q) noexcept {
  if (cur.count <= prev.count) return 0.0;
  const std::uint64_t total = cur.count - prev.count;
  // Diff the cumulative bucket counts.  Both snapshots live on the same
  // fixed exponential grid, so bounds present in both compare exactly; a
  // bound absent from `prev` simply had no observations yet (cumulative =
  // the previous present bound's value).
  std::vector<std::pair<double, std::uint64_t>> window;
  window.reserve(cur.buckets.size());
  std::size_t pi = 0;
  std::uint64_t prev_cum = 0;
  for (const auto& [bound, cum] : cur.buckets) {
    while (pi < prev.buckets.size() && prev.buckets[pi].first <= bound) {
      prev_cum = prev.buckets[pi].second;
      ++pi;
    }
    const std::uint64_t wcum = cum > prev_cum ? cum - prev_cum : 0;
    window.emplace_back(bound, std::min(wcum, total));
  }
  return InterpolateBucketQuantile(window, total, q, /*min_value=*/0.0,
                                   cur.max);
}

TimeSeriesStore::TimeSeriesStore(const MetricsRegistry* registry,
                                 TimeSeriesConfig config)
    : registry_(registry), config_(config) {
  if (config_.window_s <= 0.0) config_.window_s = 1.0;
  if (config_.capacity == 0) config_.capacity = 1;
}

void TimeSeriesStore::SampleAt(double now_s) {
  MetricsSnapshot cur = registry_->Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  if (!has_baseline_) {
    has_baseline_ = true;
    prev_t_ = now_s;
    prev_ = std::move(cur);
    return;
  }
  if (!(now_s > prev_t_)) return;

  TimeSeriesWindow window;
  window.seq = next_seq_++;
  window.start_s = prev_t_;
  window.end_s = now_s;
  const double width = window.Width();

  for (const auto& [name, total] : cur.counters) {
    const std::uint64_t before = prev_.CounterValue(name);
    CounterWindow c;
    c.total = total;
    c.delta = total > before ? total - before : 0;
    c.rate = static_cast<double>(c.delta) / width;
    window.counters.emplace(name, c);
  }
  for (const auto& [name, value] : cur.gauges)
    window.gauges.emplace(name, value);
  for (const auto& [name, snapshot] : cur.histograms) {
    static const HistogramSnapshot kEmpty;
    const HistogramSnapshot* before = prev_.HistogramFor(name);
    if (before == nullptr) before = &kEmpty;
    HistogramWindow h;
    h.total_count = snapshot.count;
    h.delta_count =
        snapshot.count > before->count ? snapshot.count - before->count : 0;
    h.p50 = WindowQuantile(snapshot, *before, 0.5);
    h.p99 = WindowQuantile(snapshot, *before, 0.99);
    h.p999 = WindowQuantile(snapshot, *before, 0.999);
    window.histograms.emplace(name, h);
  }

  ring_.push_back(std::move(window));
  while (ring_.size() > config_.capacity) ring_.pop_front();
  prev_t_ = now_s;
  prev_ = std::move(cur);
  sampled_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TimeSeriesWindow> TimeSeriesStore::Windows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::string TimeSeriesStore::ToJsonLines() const {
  const std::vector<TimeSeriesWindow> windows = Windows();
  std::string out;
  for (const TimeSeriesWindow& w : windows) {
    out += "{\"seq\":" + std::to_string(w.seq) +
           ",\"start_s\":" + Num(w.start_s) + ",\"end_s\":" + Num(w.end_s) +
           ",\"counters\":{";
    bool first = true;
    for (const auto& [name, c] : w.counters) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      out += JsonEscape(name);
      out += "\":{\"total\":" + std::to_string(c.total) +
             ",\"delta\":" + std::to_string(c.delta) +
             ",\"rate\":" + Num(c.rate) + "}";
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : w.gauges) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      out += JsonEscape(name);
      out += "\":" + Num(value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : w.histograms) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      out += JsonEscape(name);
      out += "\":{\"count\":" + std::to_string(h.total_count) +
             ",\"delta\":" + std::to_string(h.delta_count) +
             ",\"p50\":" + Num(h.p50) + ",\"p99\":" + Num(h.p99) +
             ",\"p999\":" + Num(h.p999) + "}";
    }
    out += "}}\n";
  }
  return out;
}

std::string TimeSeriesStore::ToChromeCounters(
    std::string_view process_name) const {
  const std::vector<TimeSeriesWindow> windows = Windows();
  std::string out = "{\"traceEvents\":[";
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"" +
         JsonEscape(process_name) + ":counters\"}}";
  for (const TimeSeriesWindow& w : windows) {
    const auto ts = static_cast<long long>(w.end_s * 1e6);
    for (const auto& [name, c] : w.counters) {
      out += ",{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":" +
             std::to_string(ts) + ",\"name\":\"" + JsonEscape(name) +
             "\",\"args\":{\"rate\":" + Num(c.rate) + "}}";
    }
    for (const auto& [name, value] : w.gauges) {
      out += ",{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":" +
             std::to_string(ts) + ",\"name\":\"" + JsonEscape(name) +
             "\",\"args\":{\"value\":" + Num(value) + "}}";
    }
  }
  out += "]}\n";
  return out;
}

void BackgroundSampler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  store_->SampleAt(clock_->Now());  // seed the baseline
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    const auto interval = std::chrono::duration<double>(
        store_->config().window_s);
    while (!stop_) {
      cv_.wait_for(lock, interval, [this] { return stop_; });
      if (stop_) break;
      lock.unlock();
      store_->SampleAt(clock_->Now());
      lock.lock();
    }
  });
}

void BackgroundSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  store_->SampleAt(clock_->Now());  // close the tail window
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

}  // namespace vinelet::telemetry
