// Metrics registry: named counters, gauges, and histograms shared by the
// real runtime, the simulator, and the storage layer.
//
// Updates are lock-cheap: counters and histograms are sharded across
// cache-line-aligned atomic cells indexed by a per-thread hash, so N threads
// incrementing the same counter do not bounce one cache line.  Registration
// (name -> handle) takes a mutex once; hot paths hold the returned reference,
// which stays valid for the registry's lifetime.
//
// Snapshot() produces an internally consistent view: a histogram snapshot's
// count always equals the sum of its bucket counts (the count is derived
// from the buckets, never read separately), and counters are monotone.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vinelet::telemetry {

/// Number of independent atomic cells per counter/histogram.
inline constexpr std::size_t kMetricShards = 16;

/// Stable per-thread shard index in [0, kMetricShards).
std::size_t ThreadShard() noexcept;

/// Monotone event counter.
class Counter {
 public:
  void Add(std::uint64_t delta = 1) noexcept {
    shards_[ThreadShard()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t Value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_)
      total += shard.value.load(std::memory_order_relaxed);
    return total;
  }

  void Reset() noexcept {
    for (auto& shard : shards_)
      shard.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-value / up-down metric (e.g. active libraries, retained bytes).
class Gauge {
 public:
  void Set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }

  void Add(double delta) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Consistent read of one histogram: count == sum of bucket counts.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;
  /// (upper bound, observations <= bound); last bucket bound is +inf.
  std::vector<std::pair<double, std::uint64_t>> buckets;

  double Mean() const noexcept { return count == 0 ? 0.0 : sum / count; }

  /// Quantile with linear interpolation inside the exponential buckets,
  /// q in [0, 1]; see InterpolateBucketQuantile for the exact contract.
  double Quantile(double q) const noexcept;
};

/// Quantile over cumulative exponential-bucket counts with linear
/// interpolation inside the covering bucket.  `cumulative` is (upper bound,
/// observations <= bound) pairs on the Histogram grid, ending at `total`
/// (the +inf overflow bound allowed last); empty buckets may be omitted.
/// Contract, locked by table-driven tests:
///  * total == 0 returns 0;
///  * the continuous rank is q * total: q == 0 lands on the covering
///    bucket's lower edge, q == 1 on its upper edge, and a rank exactly on
///    a bucket boundary returns that boundary (no bleed into the next
///    bucket);
///  * a bucket's edges are its true grid bounds (bound/2 .. bound; the
///    first grid bucket spans 0 .. kFirstBound), so a single-bucket
///    distribution interpolates across that bucket alone;
///  * results are clamped to [min_value, max_value], which callers pass as
///    the observed min/max (the overflow bucket's upper edge is max_value).
double InterpolateBucketQuantile(
    const std::vector<std::pair<double, std::uint64_t>>& cumulative,
    std::uint64_t total, double q, double min_value,
    double max_value) noexcept;

/// Fixed-exponential-bucket histogram of non-negative values (seconds or
/// bytes).  Buckets double from kFirstBound; values beyond the last bound
/// land in an overflow bucket.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 44;  // +1 overflow cell below
  static constexpr double kFirstBound = 1e-7;

  void Observe(double value) noexcept;

  HistogramSnapshot Snapshot() const;

  void Reset() noexcept;

  /// Upper bound of bucket `i` (i < kBuckets); used by tests and exporters.
  static double BucketBound(std::size_t i) noexcept;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets + 1> counts{};
    std::atomic<double> sum{0.0};
  };
  std::array<Shard, kMetricShards> shards_;
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> any_{false};
};

/// One consistent view of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  std::uint64_t CounterValue(const std::string& name,
                             std::uint64_t fallback = 0) const;
  double GaugeValue(const std::string& name, double fallback = 0.0) const;
  const HistogramSnapshot* HistogramFor(const std::string& name) const;
};

/// Thread-safe name -> metric registry.  Returned references remain valid
/// for the registry's lifetime; callers cache them on hot paths.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric (names stay registered).  Benches use this between
  /// scenarios that share one registry.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace vinelet::telemetry
