#include "telemetry/slo.hpp"

#include <algorithm>
#include <set>

namespace vinelet::telemetry {

SloMonitor::SloMonitor(SloConfig config) : config_(std::move(config)) {
  for (const SloTarget& target : config_.targets)
    if (target.library == "*") default_target_ = target;
}

const SloTarget& SloMonitor::TargetFor(const std::string& library) const {
  for (const SloTarget& target : config_.targets)
    if (target.library == library) return target;
  return default_target_;
}

void SloMonitor::Record(const std::string& library, double latency_s, bool ok,
                        double now_s) {
  if (!Enabled()) return;
  const SloTarget& target = TargetFor(library);
  std::lock_guard<std::mutex> lock(mu_);
  auto& window = windows_[library];
  window.push_back({now_s, latency_s, ok});
  const double horizon = now_s - target.window_s;
  while (!window.empty() && window.front().at_s < horizon) window.pop_front();
}

std::vector<SloSnapshot> SloMonitor::Snapshot(double now_s) const {
  std::vector<SloSnapshot> out;
  if (!Enabled()) return out;
  std::lock_guard<std::mutex> lock(mu_);
  std::set<std::string> libraries;
  for (const auto& [library, _] : windows_) libraries.insert(library);
  for (const SloTarget& target : config_.targets)
    if (target.library != "*") libraries.insert(target.library);
  for (const std::string& library : libraries) {
    const SloTarget& target = TargetFor(library);
    SloSnapshot snap;
    snap.library = library;
    snap.latency_target_s = target.latency_target_s;
    snap.target_fraction = target.target_fraction;
    snap.min_goodput_per_s = target.min_goodput_per_s;
    snap.window_s = target.window_s;

    std::vector<double> latencies;
    std::size_t good = 0;
    auto it = windows_.find(library);
    if (it != windows_.end()) {
      auto& window = it->second;
      const double horizon = now_s - target.window_s;
      while (!window.empty() && window.front().at_s < horizon)
        window.pop_front();
      for (const Sample& sample : window) {
        ++snap.samples;
        const bool slow = target.latency_target_s > 0.0 &&
                          sample.latency_s > target.latency_target_s;
        if (!sample.ok || slow) ++snap.violations;
        if (sample.ok) {
          ++good;
          latencies.push_back(sample.latency_s);
        }
      }
    }
    if (snap.samples > 0) {
      snap.violation_fraction =
          static_cast<double>(snap.violations) /
          static_cast<double>(snap.samples);
    }
    if (!latencies.empty()) {
      std::sort(latencies.begin(), latencies.end());
      auto at = [&](double q) {
        const auto idx = static_cast<std::size_t>(
            q * static_cast<double>(latencies.size() - 1) + 0.5);
        return latencies[std::min(idx, latencies.size() - 1)];
      };
      snap.p50_s = at(0.50);
      snap.p99_s = at(0.99);
    }
    snap.goodput_per_s =
        target.window_s > 0.0 ? static_cast<double>(good) / target.window_s
                              : 0.0;
    const double budget = 1.0 - target.target_fraction;
    snap.burn_rate =
        budget > 0.0 ? snap.violation_fraction / budget
                     : (snap.violations > 0 ? 1e9 : 0.0);
    snap.latency_breached = target.latency_target_s > 0.0 &&
                            snap.samples > 0 && snap.burn_rate > 1.0;
    snap.goodput_breached = target.min_goodput_per_s > 0.0 &&
                            snap.goodput_per_s < target.min_goodput_per_s;
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace vinelet::telemetry
