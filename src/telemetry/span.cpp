#include "telemetry/span.hpp"

namespace vinelet::telemetry {

std::string_view PhaseName(Phase phase) noexcept {
  switch (phase) {
    case Phase::kSubmit: return "submit";
    case Phase::kDispatch: return "dispatch";
    case Phase::kTransfer: return "transfer";
    case Phase::kUnpack: return "unpack";
    case Phase::kContextSetup: return "context-setup";
    case Phase::kDeserialize: return "deserialize";
    case Phase::kExec: return "exec";
    case Phase::kResult: return "result";
  }
  return "?";
}

void SpanTracer::Emit(SpanRecord record) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(record));
}

void SpanTracer::Emit(Phase phase, std::string_view category,
                      std::string_view track, std::uint64_t id, double start_s,
                      double end_s) {
  if (!enabled()) return;
  SpanRecord record;
  record.name = std::string(PhaseName(phase));
  record.category = std::string(category);
  record.track = std::string(track);
  record.id = id;
  record.start_s = start_s;
  record.end_s = end_s;
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> SpanTracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<SpanRecord> SpanTracer::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.swap(spans_);
  return out;
}

std::size_t SpanTracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

PhaseTotals AggregatePhases(const std::vector<SpanRecord>& spans) {
  return AggregatePhases(spans, [](const SpanRecord&) { return true; });
}

PhaseTotals AggregatePhases(
    const std::vector<SpanRecord>& spans,
    const std::function<bool(const SpanRecord&)>& filter) {
  PhaseTotals totals;
  for (const auto& span : spans) {
    if (!filter(span)) continue;
    ++totals.spans;
    const double d = span.Duration();
    if (span.name == PhaseName(Phase::kSubmit)) totals.submit_s += d;
    else if (span.name == PhaseName(Phase::kDispatch)) totals.dispatch_s += d;
    else if (span.name == PhaseName(Phase::kTransfer)) totals.transfer_s += d;
    else if (span.name == PhaseName(Phase::kUnpack)) totals.unpack_s += d;
    else if (span.name == PhaseName(Phase::kContextSetup))
      totals.context_setup_s += d;
    else if (span.name == PhaseName(Phase::kDeserialize))
      totals.deserialize_s += d;
    else if (span.name == PhaseName(Phase::kExec)) totals.exec_s += d;
    else if (span.name == PhaseName(Phase::kResult)) totals.result_s += d;
  }
  return totals;
}

}  // namespace vinelet::telemetry
