#include "telemetry/span.hpp"

#include <thread>

namespace vinelet::telemetry {

std::string_view PhaseName(Phase phase) noexcept {
  switch (phase) {
    case Phase::kSubmit: return "submit";
    case Phase::kDispatch: return "dispatch";
    case Phase::kTransfer: return "transfer";
    case Phase::kUnpack: return "unpack";
    case Phase::kContextSetup: return "context-setup";
    case Phase::kDeserialize: return "deserialize";
    case Phase::kExec: return "exec";
    case Phase::kResult: return "result";
  }
  return "?";
}

std::uint64_t SpanTracer::AllocateId() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

SpanTracer::Shard& SpanTracer::ShardForThisThread() {
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[h % kShards];
}

void SpanTracer::Emit(SpanRecord record) {
  if (!enabled()) return;
  Shard& shard = ShardForThisThread();
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.spans.push_back(std::move(record));
}

void SpanTracer::Emit(Phase phase, std::string_view category,
                      std::string_view track, std::uint64_t id, double start_s,
                      double end_s) {
  if (!enabled()) return;
  SpanRecord record;
  record.name = std::string(PhaseName(phase));
  record.category = std::string(category);
  record.track = std::string(track);
  record.id = id;
  record.start_s = start_s;
  record.end_s = end_s;
  Emit(std::move(record));
}

TraceContext SpanTracer::StartTrace(Phase phase, std::string_view category,
                                    std::string_view track, std::uint64_t id,
                                    double start_s, double end_s) {
  if (!enabled()) return {};
  SpanRecord record;
  record.name = std::string(PhaseName(phase));
  record.category = std::string(category);
  record.track = std::string(track);
  record.id = id;
  record.start_s = start_s;
  record.end_s = end_s;
  record.trace_id = AllocateId();
  record.span_id = AllocateId();
  const TraceContext ctx{record.trace_id, record.span_id};
  Emit(std::move(record));
  return ctx;
}

TraceContext SpanTracer::EmitLinked(TraceContext parent, Phase phase,
                                    std::string_view category,
                                    std::string_view track, std::uint64_t id,
                                    double start_s, double end_s) {
  if (!enabled()) return parent;
  SpanRecord record;
  record.name = std::string(PhaseName(phase));
  record.category = std::string(category);
  record.track = std::string(track);
  record.id = id;
  record.start_s = start_s;
  record.end_s = end_s;
  if (!parent.valid()) {
    // Degrade to a plain (traceless) span: causality was never established
    // upstream, but the phase timing is still worth recording.
    Emit(std::move(record));
    return parent;
  }
  record.trace_id = parent.trace_id;
  record.span_id = AllocateId();
  record.parent_span_id = parent.parent_span_id;
  const TraceContext ctx{record.trace_id, record.span_id};
  Emit(std::move(record));
  return ctx;
}

std::vector<SpanRecord> SpanTracer::Snapshot() const {
  // All shard locks, in index order, so the copy is a consistent cut: no
  // span emitted before the snapshot began can be missed.
  std::array<std::unique_lock<std::mutex>, kShards> locks;
  for (std::size_t i = 0; i < kShards; ++i)
    locks[i] = std::unique_lock<std::mutex>(shards_[i].mu);
  std::vector<SpanRecord> out;
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard.spans.size();
  out.reserve(total);
  for (const auto& shard : shards_)
    out.insert(out.end(), shard.spans.begin(), shard.spans.end());
  return out;
}

std::vector<SpanRecord> SpanTracer::Drain() {
  std::array<std::unique_lock<std::mutex>, kShards> locks;
  for (std::size_t i = 0; i < kShards; ++i)
    locks[i] = std::unique_lock<std::mutex>(shards_[i].mu);
  std::vector<SpanRecord> out;
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard.spans.size();
  out.reserve(total);
  for (auto& shard : shards_) {
    out.insert(out.end(), std::make_move_iterator(shard.spans.begin()),
               std::make_move_iterator(shard.spans.end()));
    shard.spans.clear();
  }
  return out;
}

std::size_t SpanTracer::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.spans.size();
  }
  return total;
}

PhaseTotals AggregatePhases(const std::vector<SpanRecord>& spans) {
  return AggregatePhases(spans, [](const SpanRecord&) { return true; });
}

PhaseTotals AggregatePhases(
    const std::vector<SpanRecord>& spans,
    const std::function<bool(const SpanRecord&)>& filter) {
  PhaseTotals totals;
  for (const auto& span : spans) {
    if (!filter(span)) continue;
    ++totals.spans;
    const double d = span.Duration();
    if (span.name == PhaseName(Phase::kSubmit)) totals.submit_s += d;
    else if (span.name == PhaseName(Phase::kDispatch)) totals.dispatch_s += d;
    else if (span.name == PhaseName(Phase::kTransfer)) totals.transfer_s += d;
    else if (span.name == PhaseName(Phase::kUnpack)) totals.unpack_s += d;
    else if (span.name == PhaseName(Phase::kContextSetup))
      totals.context_setup_s += d;
    else if (span.name == PhaseName(Phase::kDeserialize))
      totals.deserialize_s += d;
    else if (span.name == PhaseName(Phase::kExec)) totals.exec_s += d;
    else if (span.name == PhaseName(Phase::kResult)) totals.result_s += d;
  }
  return totals;
}

}  // namespace vinelet::telemetry
