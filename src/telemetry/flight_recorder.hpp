// Flight recorder: a fixed-size lock-free ring of recent telemetry events.
//
// Always on (unlike the span tracer): every process keeps the last few
// thousand protocol/lifecycle events in a preallocated ring so a crash, a
// failed file transfer, or an operator request can dump a post-mortem
// journal *without* having enabled tracing up front — the same reasoning as
// Netherite's partition event journals.
//
// Writers claim a slot with one fetch_add and stamp it with a per-slot
// sequence number (odd while the write is in progress, even when
// published), seqlock-style.  Readers copy slots and discard any whose
// sequence was odd or changed across the copy, so Dump() never blocks
// writers and never returns a half-written event.  The data copy itself is
// intentionally unsynchronized (the sequence check makes torn reads
// *detectable*, not impossible) — acceptable for a best-effort diagnostic
// journal, and torn slots are simply skipped.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"

namespace vinelet::telemetry {

/// One journal entry.  Fixed-size character fields keep the slot trivially
/// copyable (no heap traffic on the record path); long tags/details are
/// truncated.  `a`/`b` are event-specific operands (worker id, byte count,
/// chunk index, ...) named in the tag's context.
struct FlightEvent {
  double t_s = 0.0;
  std::uint64_t trace_id = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  char tag[16] = {};
  char detail[48] = {};
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 4096);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Timestamps come from this clock (0 without one).
  void SetClock(const Clock* clock) noexcept { clock_ = clock; }

  /// Records one event.  Lock-free: one fetch_add plus a bounded memcpy.
  void Record(std::string_view tag, std::string_view detail,
              std::uint64_t trace_id = 0, std::uint64_t a = 0,
              std::uint64_t b = 0);

  /// Copies the surviving events, oldest first.  Torn or not-yet-published
  /// slots are skipped.
  std::vector<FlightEvent> Dump() const;

  /// The journal as a JSON document:
  /// {"capacity":N,"recorded":M,"events":[{t_s,tag,detail,trace_id,a,b}...]}
  std::string DumpJson() const;

  /// If the VINELET_FLIGHT_DUMP environment variable names a directory,
  /// writes DumpJson() to "<dir>/flight-<tag>.json" — the crash hook.
  /// Returns the path written ("" when the variable is unset).
  std::string DumpOnEnv(std::string_view tag) const;

  std::size_t capacity() const noexcept { return capacity_; }
  /// Total events ever recorded (>= capacity means the ring has wrapped).
  std::uint64_t recorded() const noexcept {
    return cursor_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // 0 = never written
    FlightEvent event;
  };

  const Clock* clock_ = nullptr;
  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> cursor_{0};
};

}  // namespace vinelet::telemetry
