#include "telemetry/export.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <variant>

namespace vinelet::telemetry {

namespace {

std::string FormatNumber(double value) {
  if (std::isnan(value) || std::isinf(value)) return "0";
  char out[64];
  // %.9g keeps microsecond timestamps exact without trailing-zero noise.
  std::snprintf(out, sizeof(out), "%.9g", value);
  return out;
}

std::vector<const SpanRecord*> SortedByStart(
    const std::vector<SpanRecord>& spans) {
  std::vector<const SpanRecord*> order;
  order.reserve(spans.size());
  for (const auto& span : spans) order.push_back(&span);
  std::stable_sort(order.begin(), order.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     return a->start_s < b->start_s;
                   });
  return order;
}

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToChromeTrace(const std::vector<SpanRecord>& spans,
                          std::string_view process_name) {
  // Stable track ids in first-seen (sorted-by-start) order.
  const auto order = SortedByStart(spans);
  std::map<std::string, int> track_ids;
  for (const SpanRecord* span : order) {
    track_ids.emplace(span->track, 0);
  }
  {
    int next = 1;
    for (auto& [_, tid] : track_ids) tid = next++;
  }

  // Causal links.  A flow arrow is drawn only when both ends are in this
  // export; the flow-start record rides adjacent to the parent's X event
  // (same ts) and the flow-end adjacent to the child's, so per-track
  // timestamps stay monotone (causality gives parent.start <= child.start).
  std::map<std::uint64_t, std::size_t> span_index;  // span_id -> order index
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i]->span_id != 0) span_index.emplace(order[i]->span_id, i);
  }
  std::map<std::size_t, std::vector<std::uint64_t>> outgoing;  // parent idx
  for (const SpanRecord* span : order) {
    if (span->parent_span_id == 0 || span->span_id == 0) continue;
    auto it = span_index.find(span->parent_span_id);
    if (it == span_index.end()) continue;  // parent span not exported
    outgoing[it->second].push_back(span->span_id);
  }

  std::string out = "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"" +
         JsonEscape(process_name) + "\"}}";
  for (const auto& [track, tid] : track_ids) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"name\":\"" + JsonEscape(track) +
           "\"}}";
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    const SpanRecord* span = order[i];
    const std::string tid = std::to_string(track_ids[span->track]);
    const std::string ts = FormatNumber(span->start_s * 1e6);
    const double dur_us = std::max(0.0, span->Duration()) * 1e6;
    // Inbound flow end (the arrow head), if the parent is exported too.
    if (span->parent_span_id != 0 && span->span_id != 0 &&
        span_index.count(span->parent_span_id) != 0) {
      out += ",\n{\"name\":\"trace\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":"
             "\"e\",\"id\":" +
             std::to_string(span->span_id) + ",\"pid\":1,\"tid\":" + tid +
             ",\"ts\":" + ts + "}";
    }
    out += ",\n{\"name\":\"" + JsonEscape(span->name) + "\",\"cat\":\"" +
           JsonEscape(span->category.empty() ? "span" : span->category) +
           "\",\"ph\":\"X\",\"pid\":1,\"tid\":" + tid + ",\"ts\":" + ts +
           ",\"dur\":" + FormatNumber(dur_us) +
           ",\"args\":{\"id\":" + std::to_string(span->id);
    if (span->trace_id != 0) {
      out += ",\"trace_id\":" + std::to_string(span->trace_id) +
             ",\"span_id\":" + std::to_string(span->span_id) +
             ",\"parent_span_id\":" + std::to_string(span->parent_span_id);
    }
    out += "}}";
    // Outbound flow starts (the arrow tails), one per exported child.
    auto flows = outgoing.find(i);
    if (flows != outgoing.end()) {
      for (const std::uint64_t flow_id : flows->second) {
        out += ",\n{\"name\":\"trace\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":" +
               std::to_string(flow_id) + ",\"pid\":1,\"tid\":" + tid +
               ",\"ts\":" + ts + "}";
      }
    }
  }
  out += "\n]\n}\n";
  return out;
}

std::string SpansToCsv(const std::vector<SpanRecord>& spans) {
  std::string out = "track,category,name,id,start_s,end_s,duration_s\n";
  char line[256];
  for (const SpanRecord* span : SortedByStart(spans)) {
    std::snprintf(line, sizeof(line), "%s,%s,%s,%llu,%.9f,%.9f,%.9f\n",
                  span->track.c_str(), span->category.c_str(),
                  span->name.c_str(),
                  static_cast<unsigned long long>(span->id), span->start_s,
                  span->end_s, span->Duration());
    out += line;
  }
  return out;
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": " + std::to_string(value);
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": " + FormatNumber(value);
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(hist.count) + ", \"sum\": " + FormatNumber(hist.sum) +
           ", \"mean\": " + FormatNumber(hist.Mean()) +
           ", \"min\": " + FormatNumber(hist.min) +
           ", \"max\": " + FormatNumber(hist.max) +
           ", \"p50\": " + FormatNumber(hist.Quantile(0.5)) +
           ", \"p99\": " + FormatNumber(hist.Quantile(0.99)) +
           ", \"p999\": " + FormatNumber(hist.Quantile(0.999)) + "}";
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Strict JSON parsing (validation only — no DOM escapes this file).
// ---------------------------------------------------------------------------

namespace {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value = nullptr;

  const JsonObject* AsObject() const {
    return std::get_if<JsonObject>(&value);
  }
  const JsonArray* AsArray() const { return std::get_if<JsonArray>(&value); }
  const std::string* AsString() const {
    return std::get_if<std::string>(&value);
  }
  const double* AsNumber() const { return std::get_if<double>(&value); }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    auto value = ParseValue();
    if (!value.ok()) return value;
    SkipSpace();
    if (pos_ != text_.size())
      return Fail("trailing characters after JSON value");
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return InvalidArgumentError("JSON parse error at byte " +
                                std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      auto s = ParseString();
      if (!s.ok()) return s.status();
      JsonValue v;
      v.value = std::move(*s);
      return v;
    }
    if (c == 't' || c == 'f') return ParseKeyword();
    if (c == 'n') return ParseKeyword();
    return ParseNumber();
  }

  Result<JsonValue> ParseKeyword() {
    auto match = [&](std::string_view word) {
      return text_.substr(pos_, word.size()) == word;
    };
    JsonValue v;
    if (match("true")) {
      pos_ += 4;
      v.value = true;
    } else if (match("false")) {
      pos_ += 5;
      v.value = false;
    } else if (match("null")) {
      pos_ += 4;
      v.value = nullptr;
    } else {
      return Fail("unknown keyword");
    }
    return v;
  }

  Result<JsonValue> ParseNumber() {
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == begin) return Fail("expected a value");
    const std::string token(text_.substr(begin, pos_ - begin));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    JsonValue v;
    v.value = parsed;
    return v;
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Fail("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(
                      static_cast<unsigned char>(text_[pos_ + i])))
                return Fail("bad \\u escape");
            }
            out += '?';  // validation only; code point value is irrelevant
            pos_ += 4;
            break;
          }
          default: return Fail("unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
    return Fail("unterminated string");
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) return Fail("expected '{'");
    JsonObject object;
    SkipSpace();
    if (Consume('}')) {
      JsonValue v;
      v.value = std::move(object);
      return v;
    }
    while (true) {
      SkipSpace();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Fail("expected ':'");
      auto value = ParseValue();
      if (!value.ok()) return value;
      object.emplace(std::move(*key), std::move(*value));
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Fail("expected ',' or '}'");
    }
    JsonValue v;
    v.value = std::move(object);
    return v;
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) return Fail("expected '['");
    JsonArray array;
    SkipSpace();
    if (Consume(']')) {
      JsonValue v;
      v.value = std::move(array);
      return v;
    }
    while (true) {
      auto value = ParseValue();
      if (!value.ok()) return value;
      array.push_back(std::move(*value));
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Fail("expected ',' or ']'");
    }
    JsonValue v;
    v.value = std::move(array);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::optional<double> NumberField(const JsonObject& object,
                                  const std::string& key) {
  auto it = object.find(key);
  if (it == object.end()) return std::nullopt;
  const double* number = it->second.AsNumber();
  if (number == nullptr) return std::nullopt;
  return *number;
}

}  // namespace

Result<TraceCheck> ValidateChromeTrace(std::string_view json) {
  auto parsed = JsonParser(json).Parse();
  if (!parsed.ok()) return parsed.status();

  const JsonObject* root = parsed->AsObject();
  if (root == nullptr)
    return InvalidArgumentError("trace root is not a JSON object");
  auto events_it = root->find("traceEvents");
  if (events_it == root->end())
    return InvalidArgumentError("missing traceEvents");
  const JsonArray* events = events_it->second.AsArray();
  if (events == nullptr)
    return InvalidArgumentError("traceEvents is not an array");

  TraceCheck check;
  // Per-track monotone timestamps, B/E balance, and s/f flow pairing.
  std::map<std::pair<double, double>, double> last_ts;
  std::map<std::pair<double, double>, std::size_t> open_spans;
  std::map<double, double> flow_starts;  // flow id -> start ts
  std::vector<std::pair<double, double>> flow_ends;  // (flow id, ts)
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonObject* event = (*events)[i].AsObject();
    if (event == nullptr)
      return InvalidArgumentError("traceEvents[" + std::to_string(i) +
                                  "] is not an object");
    auto ph_it = event->find("ph");
    const std::string* ph =
        ph_it == event->end() ? nullptr : ph_it->second.AsString();
    if (ph == nullptr)
      return InvalidArgumentError("event " + std::to_string(i) +
                                  " has no phase");
    if (*ph == "M") continue;  // metadata
    const bool flow = *ph == "s" || *ph == "t" || *ph == "f";
    const bool counter = *ph == "C";
    if (*ph != "X" && *ph != "B" && *ph != "E" && !flow && !counter)
      return InvalidArgumentError("event " + std::to_string(i) +
                                  " has unsupported phase '" + *ph + "'");
    const auto ts = NumberField(*event, "ts");
    if (!ts.has_value())
      return InvalidArgumentError("event " + std::to_string(i) +
                                  " has no numeric ts");
    const double pid = NumberField(*event, "pid").value_or(0);
    const double tid = NumberField(*event, "tid").value_or(0);
    const auto track = std::make_pair(pid, tid);
    auto [it, inserted] = last_ts.emplace(track, *ts);
    if (!inserted) {
      if (*ts < it->second)
        return InvalidArgumentError(
            "event " + std::to_string(i) +
            ": timestamps not monotone on track tid=" +
            std::to_string(static_cast<long long>(tid)));
      it->second = *ts;
    }
    if (flow) {
      const auto id = NumberField(*event, "id");
      if (!id.has_value())
        return InvalidArgumentError("event " + std::to_string(i) + " ('" +
                                    *ph + "') has no numeric flow id");
      if (*ph == "s") {
        flow_starts.emplace(*id, *ts);
      } else if (*ph == "f") {
        flow_ends.emplace_back(*id, *ts);
      }
      ++check.flows;
      continue;
    }
    if (counter) {
      auto args_it = event->find("args");
      if (args_it == event->end() || args_it->second.AsObject() == nullptr)
        return InvalidArgumentError("event " + std::to_string(i) +
                                    " ('C') has no args object");
      ++check.counters;
      continue;
    }
    if (*ph == "X") {
      const auto dur = NumberField(*event, "dur");
      if (!dur.has_value() || *dur < 0)
        return InvalidArgumentError("event " + std::to_string(i) +
                                    " ('X') has no non-negative dur");
    } else if (*ph == "B") {
      ++open_spans[track];
    } else {  // "E"
      auto open_it = open_spans.find(track);
      if (open_it == open_spans.end() || open_it->second == 0)
        return InvalidArgumentError("event " + std::to_string(i) +
                                    " ('E') closes nothing");
      --open_it->second;
    }
    ++check.events;
  }
  for (const auto& [id, ts] : flow_ends) {
    auto start = flow_starts.find(id);
    if (start == flow_starts.end())
      return InvalidArgumentError(
          "flow end id=" + std::to_string(static_cast<long long>(id)) +
          " has no matching flow start");
    if (ts < start->second)
      return InvalidArgumentError(
          "flow id=" + std::to_string(static_cast<long long>(id)) +
          " ends before it starts");
  }
  for (const auto& [track, open] : open_spans) {
    if (open != 0)
      return InvalidArgumentError(
          "track tid=" +
          std::to_string(static_cast<long long>(track.second)) + " has " +
          std::to_string(open) + " unclosed span(s)");
  }
  check.tracks = last_ts.size();
  return check;
}

Status ValidateJson(std::string_view json) {
  auto parsed = JsonParser(json).Parse();
  if (!parsed.ok()) return parsed.status();
  return Status::Ok();
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr)
    return UnavailableError("cannot open for writing: " + path);
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), file);
  const int closed = std::fclose(file);
  if (written != content.size() || closed != 0)
    return DataLossError("short write: " + path);
  return Status::Ok();
}

}  // namespace vinelet::telemetry
