// Span tracer: per-invocation lifecycle phases against a pluggable clock.
//
// One span is one phase of one invocation/task/library lifecycle.  The real
// runtime emits spans stamped by a shared wall clock; VineSim emits the same
// phase names with explicit virtual-time stamps — so Table-5-style
// breakdowns render from either backend through one code path
// (AggregatePhases), and both export to Chrome trace_event JSON.
//
// Spans carry causal identity: a `trace_id` names one end-to-end story (one
// invocation, one broadcast), `span_id` names this span, and
// `parent_span_id` links to the span that caused it — possibly emitted by
// another process after the TraceContext crossed the wire.  The exporter
// renders parent/child links as Chrome trace_event flow arrows.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"

namespace vinelet::telemetry {

/// The span taxonomy: the lifecycle of one invocation end-to-end.
enum class Phase : std::uint8_t {
  kSubmit = 0,    // application submit -> manager event loop accepts
  kDispatch,      // queued at manager -> placement committed / sent
  kTransfer,      // invocation details + context files over the network
  kUnpack,        // environment tarball expansion on the worker
  kContextSetup,  // context-setup function builds retained state
  kDeserialize,   // function/argument reconstruction
  kExec,          // the function body itself
  kResult,        // result retrieval / resolution at the manager
};

std::string_view PhaseName(Phase phase) noexcept;

/// Causal identity carried across hops (and across the wire): which trace a
/// span belongs to and which span caused it.  A zero trace_id means "not
/// traced"; the wire protocol still round-trips it so a trace started on
/// one side survives a hop through a process whose tracer is disabled.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;

  bool valid() const noexcept { return trace_id != 0; }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// One recorded span.  `track` is the timeline it renders on (one per
/// worker / library / the manager); `id` correlates spans of one task or
/// invocation.  `trace_id`/`span_id`/`parent_span_id` are the causal links
/// (zero when the span was emitted outside any trace).
struct SpanRecord {
  std::string name;      // phase name (PhaseName) or custom label
  std::string category;  // "task", "invocation", "library", "file", ...
  std::string track;     // "manager", "worker-3", ...
  std::uint64_t id = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  double Duration() const noexcept { return end_s - start_s; }
};

/// Thread-safe span sink.  Disabled by default: an Emit on a disabled
/// tracer is one atomic load.  The clock is only consulted by Now()/Scope;
/// explicit-timestamp emission (the simulator) never reads it.
///
/// Storage is sharded by thread: concurrent emitters on different threads
/// land in different shards and never contend, and Snapshot/Drain take all
/// shard locks (in index order), so an export concurrent with recording
/// observes a consistent cut and loses nothing.
class SpanTracer {
 public:
  SpanTracer() = default;
  explicit SpanTracer(const Clock* clock) : clock_(clock) {}

  void SetClock(const Clock* clock) noexcept { clock_ = clock; }

  void SetEnabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Current time on the tracer's clock (0 without a clock).
  double Now() const noexcept { return clock_ != nullptr ? clock_->Now() : 0; }

  /// Allocates a process-wide unique, nonzero trace/span id.
  static std::uint64_t AllocateId() noexcept;

  void Emit(SpanRecord record);

  void Emit(Phase phase, std::string_view category, std::string_view track,
            std::uint64_t id, double start_s, double end_s);

  /// Emits the root span of a new trace and returns its context
  /// ({trace_id, root_span_id}).  Returns a null context when disabled.
  TraceContext StartTrace(Phase phase, std::string_view category,
                          std::string_view track, std::uint64_t id,
                          double start_s, double end_s);

  /// Emits a span as a child of `parent` and returns the context a further
  /// child would use ({parent.trace_id, new_span_id}).  When the tracer is
  /// disabled nothing is recorded; when `parent` is null the span is
  /// recorded without causal identity.  In both cases `parent` is returned
  /// unchanged, so trace identity still flows through untraced processes.
  TraceContext EmitLinked(TraceContext parent, Phase phase,
                          std::string_view category, std::string_view track,
                          std::uint64_t id, double start_s, double end_s);

  /// Copies the recorded spans.
  std::vector<SpanRecord> Snapshot() const;

  /// Moves the recorded spans out, leaving the tracer empty.
  std::vector<SpanRecord> Drain();

  std::size_t size() const;

  /// RAII span over the tracer's clock.
  class Scope {
   public:
    Scope(SpanTracer& tracer, Phase phase, std::string_view category,
          std::string_view track, std::uint64_t id)
        : tracer_(tracer), phase_(phase), category_(category), track_(track),
          id_(id), start_s_(tracer.Now()) {}
    ~Scope() {
      tracer_.Emit(phase_, category_, track_, id_, start_s_, tracer_.Now());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    SpanTracer& tracer_;
    Phase phase_;
    std::string category_;
    std::string track_;
    std::uint64_t id_;
    double start_s_;
  };

 private:
  static constexpr std::size_t kShards = 8;
  struct Shard {
    mutable std::mutex mu;
    std::vector<SpanRecord> spans;
  };
  Shard& ShardForThisThread();

  std::atomic<bool> enabled_{false};
  const Clock* clock_ = nullptr;
  mutable std::array<Shard, kShards> shards_;
};

/// Accumulated time per phase, with span counts — the substrate for
/// Table-5-style breakdowns.
struct PhaseTotals {
  double submit_s = 0;
  double dispatch_s = 0;
  double transfer_s = 0;
  double unpack_s = 0;
  double context_setup_s = 0;
  double deserialize_s = 0;
  double exec_s = 0;
  double result_s = 0;
  std::uint64_t spans = 0;

  /// Table 5's four columns.
  double TransferColumn() const noexcept { return transfer_s; }
  double WorkerColumn() const noexcept { return unpack_s; }
  double ContextColumn() const noexcept {
    return context_setup_s + deserialize_s;
  }
  double ExecColumn() const noexcept { return exec_s; }
};

/// Sums span durations by phase name.  Spans whose name is not in the
/// taxonomy are counted in `spans` but accumulate nowhere.
PhaseTotals AggregatePhases(const std::vector<SpanRecord>& spans);

/// Same, restricted to spans matching `filter`.
PhaseTotals AggregatePhases(
    const std::vector<SpanRecord>& spans,
    const std::function<bool(const SpanRecord&)>& filter);

}  // namespace vinelet::telemetry
