// Real-socket transport backend: epoll event loop + length-prefixed framing.
//
// Topology.  Every process runs one TcpTransport and listens on a TCP port.
// One process is the *hub* (the one hosting the manager endpoint): it is
// dialed by every node, keeps the authoritative endpoint->address directory,
// and pushes directory snapshots (kPeers frames) to all nodes whenever
// membership changes.  Nodes dial peers lazily — the first Send to an
// endpoint hosted elsewhere opens (or reuses) a connection to that
// endpoint's advertised address.  That matches the traffic pattern of the
// runtime: every node talks to the manager constantly, and worker<->worker
// connections appear only when chunk transfers or peer blob fetches are
// scheduled between the pair.
//
// Event loop.  A single thread owns epoll, all sockets, and all connection
// state transitions.  Caller threads (manager loop, worker task threads)
// only enqueue: Send() resolves the route under the transport mutex,
// appends an OutFrame to the connection's output queue, and wakes the loop
// via an eventfd.  The loop flushes queues with writev — each frame
// contributes up to three iovecs (header / payload / attachment), and
// multiple queued frames coalesce into one syscall — so bulk attachment
// Blobs are scattered straight from their refcounted buffers, never copied
// into a contiguous send buffer.
//
// Backpressure.  Each connection's output queue is capped
// (TcpTransportConfig::send_queue_limit_bytes).  A Send that would exceed
// the cap blocks the *caller* until the socket drains (stalls are counted
// in ConnectionStats::backpressure_stalls), so one slow peer throttles its
// senders instead of ballooning memory.  Frames the event loop itself
// originates (handshake, directory pushes) bypass the cap — they are tiny
// and must never deadlock the loop.
//
// Faults.  An installed FaultInjector is consulted at the send boundary —
// the moment bytes would be committed to a socket — with the same semantics
// as the in-process bus: drops and partitions return Ok() (silence, not an
// error), corruption flips a bit in a deep copy, delays park the frame in
// the loop's timer heap.  This is what lets the chaos soak run unmodified
// against real sockets.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/framing.hpp"
#include "net/transport.hpp"

namespace vinelet::net {

struct TcpTransportConfig {
  /// Address this process listens on.  Port 0 = kernel-assigned (tests);
  /// the bound port is readable via listen_port() after Start().
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;

  /// Hub address.  Empty host = this process *is* the hub.
  std::string hub_host;
  std::uint16_t hub_port = 0;

  /// Host nodes advertise to peers for inbound dials.  Defaults to
  /// listen_host; set it when listening on 0.0.0.0 behind a known address.
  std::string advertise_host;

  /// Per-connection output queue cap; Sends block above it.
  std::size_t send_queue_limit_bytes = std::size_t{64} << 20;

  /// Wire-level sanity caps (see FramingLimits).
  FramingLimits framing;

  /// How long Register() waits for the hub to acknowledge the endpoint
  /// (first directory snapshot containing it) before failing.
  double register_timeout_s = 10.0;
};

/// Real-socket Transport backend.  Construct, Start(), then use through the
/// Transport interface; Shutdown() (or destruction) joins the event loop.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpTransportConfig config = {});
  ~TcpTransport() override;

  /// Binds the listen socket, connects to the hub (when a node), and starts
  /// the event loop.  Must be called once before any other method.
  Status Start();

  /// Stops the event loop, closes every socket and inbox, and unblocks any
  /// Send stalled on backpressure.  Idempotent.
  void Shutdown();

  bool is_hub() const noexcept { return config_.hub_host.empty(); }
  /// The actually-bound listen port (resolves port 0).
  std::uint16_t listen_port() const noexcept { return bound_port_; }

  // Transport interface -----------------------------------------------------
  Result<std::shared_ptr<Inbox>> Register(EndpointId id,
                                          std::size_t capacity = 0) override;
  void Unregister(EndpointId id) override;
  bool Connected(EndpointId id) const override;
  Status Send(EndpointId from, EndpointId to, Blob payload,
              Blob attachment = Blob()) override;
  Status SendMany(EndpointId from, EndpointId to,
                  std::vector<Parcel> parcels) override;
  std::vector<ConnectionStats> ConnectionsSnapshot() const override;

 private:
  struct Addr {
    std::string host;
    std::uint16_t port = 0;
    std::string Key() const { return host + ":" + std::to_string(port); }
  };

  /// One frame queued for a socket.  Header, payload, and attachment stay
  /// separate buffers until the writev syscall gathers them.
  struct OutFrame {
    std::array<std::uint8_t, kWireHeaderSize> header{};
    Blob payload;
    Blob attachment;
    std::size_t TotalBytes() const {
      return kWireHeaderSize + payload.size() + attachment.size();
    }
  };

  struct Conn {
    int fd = -1;
    std::string remote_addr;   // peer socket address, for stats
    std::string dial_key;      // Addr::Key() this conn was dialed to ("" inbound)
    bool connecting = false;   // nonblocking connect() still in flight
    bool want_write = false;   // EPOLLOUT currently armed
    bool is_hub_link = false;  // node side: the connection to the hub
    std::set<EndpointId> endpoints;  // remote endpoints reached via this conn
    FrameDecoder decoder;

    std::deque<OutFrame> outq;
    std::size_t outq_bytes = 0;
    std::size_t front_offset = 0;  // bytes of outq.front() already written

    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t peak_queue_bytes = 0;
    std::uint64_t backpressure_stalls = 0;
  };

  /// A frame parked by an injected delay, re-sent when due.
  struct DelayedSend {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq = 0;
    EndpointId from = 0;
    EndpointId to = 0;
    Blob payload;
    Blob attachment;
    struct Later {
      bool operator()(const DelayedSend& a, const DelayedSend& b) const {
        return a.due != b.due ? a.due > b.due : a.seq > b.seq;
      }
    };
  };

  // --- event loop (all private methods below run on loop_thread_ unless
  // --- noted; mu_ is held where stated in the definitions)
  void EventLoop();
  void HandleListener();
  void HandleConn(int fd, std::uint32_t events);
  void ReadConn(std::shared_ptr<Conn> conn);
  void FlushConn(Conn& conn);  // mu_ held
  void CloseConn(int fd, const char* why);
  void ProcessFrame(const std::shared_ptr<Conn>& conn, DecodedWireFrame frame);
  void HandleHello(const std::shared_ptr<Conn>& conn,
                   const DecodedWireFrame& frame);
  void HandlePeers(const DecodedWireFrame& frame);
  void HandleGoodbye(const std::shared_ptr<Conn>& conn,
                     const DecodedWireFrame& frame);
  void BroadcastDirectory();  // hub only; mu_ held
  void PumpDelayed();

  // --- shared helpers (any thread)
  Status SendResolved(EndpointId from, EndpointId to, Blob payload,
                      Blob attachment, bool apply_faults);
  Status EnqueueRemote(EndpointId from, EndpointId to, WireKind kind,
                       Blob payload, Blob attachment, bool blockable);
  Status DeliverLocal(const std::shared_ptr<Inbox>& inbox, EndpointId from,
                      Blob payload, Blob attachment);
  void EnqueueControl(Conn& conn, WireKind kind, EndpointId sender,
                      std::vector<std::uint8_t> body);  // mu_ held
  Result<std::shared_ptr<Conn>> RouteTo(EndpointId to);  // mu_ held (lock)
  Result<std::shared_ptr<Conn>> DialLocked(const Addr& addr);  // mu_ held
  void SendHelloLocked(Conn& conn);
  std::vector<std::uint8_t> EncodeDirectoryLocked() const;
  void ArmWrite(Conn& conn, bool enable);  // mu_ held
  void WakeLoop();
  void DropRoutesVia(int fd, std::vector<EndpointId>* lost);  // mu_ held

  TcpTransportConfig config_;
  std::uint16_t bound_port_ = 0;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: caller threads kick the loop after enqueue
  int hub_fd_ = -1;   // node side: fd of the hub connection (-1 = down)

  mutable std::mutex mu_;
  std::condition_variable cv_;  // backpressure + directory waits
  bool started_ = false;
  bool stopping_ = false;

  std::unordered_map<int, std::shared_ptr<Conn>> conns_;          // by fd
  std::unordered_map<EndpointId, std::shared_ptr<Inbox>> local_;  // hosted here
  std::unordered_map<EndpointId, int> routes_;      // remote endpoint -> fd
  std::map<EndpointId, Addr> directory_;            // endpoint -> listen addr
  std::unordered_map<std::string, int> dialed_;     // Addr::Key() -> fd
  std::uint64_t directory_version_ = 0;

  std::priority_queue<DelayedSend, std::vector<DelayedSend>,
                      DelayedSend::Later>
      delayed_;
  std::uint64_t delay_seq_ = 0;

  std::thread loop_thread_;
  std::thread::id loop_tid_;  // set once at loop start; read for re-entrancy
};

}  // namespace vinelet::net
