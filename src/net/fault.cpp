#include "net/fault.hpp"

#include <string>
#include <utility>

#include "telemetry/flight_recorder.hpp"

namespace vinelet::net {
namespace {

// SplitMix64 finalizer: decorrelates stream keys so that link (1,2) and
// link (2,1) get unrelated streams even under the trivial packing below.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t LinkKey(EndpointId from, EndpointId to) {
  return Mix((from << 32) ^ to);
}

// Worker hooks draw from per-(worker, hook) streams so a setup-failure draw
// never perturbs the invocation-failure stream of the same worker.
enum WorkerHook : std::uint64_t {
  kSetupHook = 1,
  kInvocationHook = 2,
  kTaskHook = 3,
  kStragglerHook = 4,
};

std::uint64_t WorkerKey(EndpointId worker, WorkerHook hook) {
  return Mix(0xF417000000000000ull ^ (worker << 8) ^ hook);
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

Rng& FaultInjector::StreamFor(std::uint64_t key) {
  auto it = streams_.find(key);
  if (it == streams_.end())
    it = streams_.emplace(key, Rng(plan_.seed ^ key)).first;
  return it->second;
}

void FaultInjector::RecordFault(const char* tag, EndpointId from,
                                EndpointId to) {
  telemetry::FlightRecorder* flight =
      flight_.load(std::memory_order_acquire);
  if (flight) flight->Record(tag, "injected", 0, from, to);
}

SendDecision FaultInjector::OnSend(EndpointId from, EndpointId to) {
  SendDecision decision;
  if (LinkBlocked(from, to)) {
    counters_.blocked.fetch_add(1, std::memory_order_relaxed);
    RecordFault("inj-block", from, to);
    decision.drop = true;
    return decision;
  }
  const LinkFaults& link = plan_.link;
  if (link.drop_p == 0.0 && link.dup_p == 0.0 && link.corrupt_p == 0.0 &&
      link.delay_p == 0.0)
    return decision;
  double drop_draw, dup_draw, corrupt_draw, delay_draw, delay_span_draw;
  std::uint64_t corrupt_bit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Rng& rng = StreamFor(LinkKey(from, to));
    // Always burn the same number of draws per message so the stream stays
    // aligned regardless of which faults fire.
    drop_draw = rng.NextDouble();
    dup_draw = rng.NextDouble();
    corrupt_draw = rng.NextDouble();
    delay_draw = rng.NextDouble();
    delay_span_draw = rng.NextDouble();
    corrupt_bit = rng.Next();
  }
  if (drop_draw < link.drop_p) {
    counters_.dropped.fetch_add(1, std::memory_order_relaxed);
    RecordFault("inj-drop", from, to);
    decision.drop = true;
    return decision;
  }
  if (dup_draw < link.dup_p) {
    counters_.duplicated.fetch_add(1, std::memory_order_relaxed);
    RecordFault("inj-dup", from, to);
    decision.copies = 2;
  }
  if (corrupt_draw < link.corrupt_p) {
    counters_.corrupted.fetch_add(1, std::memory_order_relaxed);
    RecordFault("inj-corrupt", from, to);
    decision.corrupt = true;
    decision.corrupt_bit = corrupt_bit;
  }
  if (delay_draw < link.delay_p) {
    counters_.delayed.fetch_add(1, std::memory_order_relaxed);
    RecordFault("inj-delay", from, to);
    decision.delay_s =
        link.delay_min_s +
        delay_span_draw * (link.delay_max_s - link.delay_min_s);
  }
  return decision;
}

void FaultInjector::BlockLink(EndpointId from, EndpointId to, bool blocked) {
  std::lock_guard<std::mutex> lock(mu_);
  if (blocked)
    blocked_links_.insert(LinkKey(from, to));
  else
    blocked_links_.erase(LinkKey(from, to));
}

void FaultInjector::Partition(EndpointId a, EndpointId b, bool partitioned) {
  BlockLink(a, b, partitioned);
  BlockLink(b, a, partitioned);
}

bool FaultInjector::LinkBlocked(EndpointId from, EndpointId to) const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocked_links_.contains(LinkKey(from, to));
}

bool FaultInjector::InjectSetupFailure(EndpointId worker) {
  if (plan_.worker.setup_failure_p == 0.0) return false;
  double draw;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draw = StreamFor(WorkerKey(worker, kSetupHook)).NextDouble();
  }
  if (draw >= plan_.worker.setup_failure_p) return false;
  counters_.setup_failures.fetch_add(1, std::memory_order_relaxed);
  RecordFault("inj-setup", worker, worker);
  return true;
}

bool FaultInjector::InjectInvocationFailure(EndpointId worker) {
  if (plan_.worker.invocation_failure_p == 0.0) return false;
  double draw;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draw = StreamFor(WorkerKey(worker, kInvocationHook)).NextDouble();
  }
  if (draw >= plan_.worker.invocation_failure_p) return false;
  counters_.invocation_failures.fetch_add(1, std::memory_order_relaxed);
  RecordFault("inj-invoke", worker, worker);
  return true;
}

bool FaultInjector::InjectTaskFailure(EndpointId worker) {
  if (plan_.worker.task_failure_p == 0.0) return false;
  double draw;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draw = StreamFor(WorkerKey(worker, kTaskHook)).NextDouble();
  }
  if (draw >= plan_.worker.task_failure_p) return false;
  counters_.task_failures.fetch_add(1, std::memory_order_relaxed);
  RecordFault("inj-task", worker, worker);
  return true;
}

double FaultInjector::StragglerDelayS(EndpointId worker) {
  if (plan_.worker.straggler_p == 0.0) return 0.0;
  double draw;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draw = StreamFor(WorkerKey(worker, kStragglerHook)).NextDouble();
  }
  if (draw >= plan_.worker.straggler_p) return 0.0;
  counters_.stragglers.fetch_add(1, std::memory_order_relaxed);
  RecordFault("inj-slow", worker, worker);
  return plan_.worker.straggler_delay_s;
}

FaultStats FaultInjector::stats() const {
  FaultStats s;
  s.dropped = counters_.dropped.load(std::memory_order_relaxed);
  s.duplicated = counters_.duplicated.load(std::memory_order_relaxed);
  s.corrupted = counters_.corrupted.load(std::memory_order_relaxed);
  s.delayed = counters_.delayed.load(std::memory_order_relaxed);
  s.blocked = counters_.blocked.load(std::memory_order_relaxed);
  s.setup_failures =
      counters_.setup_failures.load(std::memory_order_relaxed);
  s.invocation_failures =
      counters_.invocation_failures.load(std::memory_order_relaxed);
  s.task_failures = counters_.task_failures.load(std::memory_order_relaxed);
  s.stragglers = counters_.stragglers.load(std::memory_order_relaxed);
  return s;
}

Blob FaultInjector::CorruptCopy(const Blob& bytes, std::uint64_t which_bit) {
  if (bytes.empty()) return bytes;
  std::vector<std::uint8_t> copy(bytes.span().begin(), bytes.span().end());
  const std::uint64_t bit = which_bit % (copy.size() * 8);
  copy[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  return Blob(std::move(copy));
}

}  // namespace vinelet::net
