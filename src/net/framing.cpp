#include "net/framing.hpp"

#include <cstring>
#include <string>
#include <utility>

namespace vinelet::net {
namespace {

void PutU32(std::uint8_t* out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i)
    out[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

void PutU64(std::uint8_t* out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i)
    out[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

std::uint32_t GetU32(const std::uint8_t* in) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i)
    value |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return value;
}

std::uint64_t GetU64(const std::uint8_t* in) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i)
    value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return value;
}

}  // namespace

namespace wire {

void AppendU32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void AppendU64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void AppendString(std::vector<std::uint8_t>& out, std::string_view text) {
  AppendU32(out, static_cast<std::uint32_t>(text.size()));
  out.insert(out.end(), text.begin(), text.end());
}

bool TakeU32(std::span<const std::uint8_t>& in, std::uint32_t& value) {
  if (in.size() < 4) return false;
  value = GetU32(in.data());
  in = in.subspan(4);
  return true;
}

bool TakeU64(std::span<const std::uint8_t>& in, std::uint64_t& value) {
  if (in.size() < 8) return false;
  value = GetU64(in.data());
  in = in.subspan(8);
  return true;
}

bool TakeString(std::span<const std::uint8_t>& in, std::string& text) {
  std::uint32_t len = 0;
  if (!TakeU32(in, len)) return false;
  if (in.size() < len) return false;
  text.assign(reinterpret_cast<const char*>(in.data()), len);
  in = in.subspan(len);
  return true;
}

}  // namespace wire

void EncodeWireHeader(const WireHeader& header,
                      std::array<std::uint8_t, kWireHeaderSize>& out) {
  out[0] = kWireMagic0;
  out[1] = kWireMagic1;
  out[2] = static_cast<std::uint8_t>(header.kind);
  out[3] = 0;
  PutU64(out.data() + 4, header.sender);
  PutU64(out.data() + 12, header.dest);
  PutU32(out.data() + 20, header.payload_len);
  PutU32(out.data() + 24, header.attach_len);
}

Result<WireHeader> DecodeWireHeader(
    std::span<const std::uint8_t, kWireHeaderSize> raw,
    const FramingLimits& limits) {
  if (raw[0] != kWireMagic0 || raw[1] != kWireMagic1)
    return DataLossError("wire frame: bad magic");
  const std::uint8_t kind = raw[2];
  if (kind < static_cast<std::uint8_t>(WireKind::kData) ||
      kind > static_cast<std::uint8_t>(WireKind::kGoodbye))
    return DataLossError("wire frame: unknown kind " + std::to_string(kind));
  if (raw[3] != 0) return DataLossError("wire frame: non-zero reserved byte");
  WireHeader header;
  header.kind = static_cast<WireKind>(kind);
  header.sender = GetU64(raw.data() + 4);
  header.dest = GetU64(raw.data() + 12);
  header.payload_len = GetU32(raw.data() + 20);
  header.attach_len = GetU32(raw.data() + 24);
  if (header.payload_len > limits.max_payload_bytes)
    return DataLossError("wire frame: payload length " +
                         std::to_string(header.payload_len) + " exceeds cap");
  if (header.attach_len > limits.max_attachment_bytes)
    return DataLossError("wire frame: attachment length " +
                         std::to_string(header.attach_len) + " exceeds cap");
  return header;
}

Status FrameDecoder::Feed(std::span<const std::uint8_t> bytes) {
  if (!status_.ok()) return status_;
  while (!bytes.empty()) {
    if (!have_header_) {
      const std::size_t take =
          std::min(bytes.size(), kWireHeaderSize - header_fill_);
      std::memcpy(header_raw_.data() + header_fill_, bytes.data(), take);
      header_fill_ += take;
      bytes = bytes.subspan(take);
      if (header_fill_ < kWireHeaderSize) break;
      auto header = DecodeWireHeader(
          std::span<const std::uint8_t, kWireHeaderSize>(header_raw_),
          limits_);
      if (!header.ok()) {
        status_ = header.status();
        return status_;
      }
      header_ = *header;
      have_header_ = true;
      body_.clear();
      body_.resize(static_cast<std::size_t>(header_.payload_len) +
                   header_.attach_len);
      body_fill_ = 0;
    }
    const std::size_t take = std::min(bytes.size(), body_.size() - body_fill_);
    if (take > 0) {
      std::memcpy(body_.data() + body_fill_, bytes.data(), take);
      body_fill_ += take;
      bytes = bytes.subspan(take);
    }
    if (body_fill_ < body_.size()) break;
    // Frame complete: one refcounted body allocation, zero-copy slices.
    DecodedWireFrame frame;
    frame.header = header_;
    Blob body(std::move(body_));
    frame.payload = body.Slice(0, header_.payload_len);
    frame.attachment = body.Slice(header_.payload_len, header_.attach_len);
    ready_.push_back(std::move(frame));
    body_ = {};
    body_fill_ = 0;
    header_fill_ = 0;
    have_header_ = false;
  }
  return Status::Ok();
}

std::optional<DecodedWireFrame> FrameDecoder::Next() {
  if (ready_.empty()) return std::nullopt;
  DecodedWireFrame frame = std::move(ready_.front());
  ready_.pop_front();
  return frame;
}

}  // namespace vinelet::net
