#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "net/fault.hpp"

namespace vinelet::net {
namespace {

// Loopback-oriented resolver: numeric IPv4 plus the one name every
// deployment script uses.  DNS is deliberately out of scope for the
// transport; daemon flags take addresses.
bool ResolveIPv4(const std::string& host, in_addr* out) {
  if (host == "localhost") return inet_pton(AF_INET, "127.0.0.1", out) == 1;
  return inet_pton(AF_INET, host.c_str(), out) == 1;
}

std::string PeerAddrString(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return "?";
  char buf[INET_ADDRSTRLEN] = {0};
  inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
  return std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port));
}

// Upper bound on frames gathered into one writev: 64 frames x 3 segments
// stays well under the kernel's IOV_MAX (1024) while still coalescing a
// deep queue into few syscalls.
constexpr std::size_t kMaxFramesPerWritev = 64;

}  // namespace

TcpTransport::TcpTransport(TcpTransportConfig config)
    : config_(std::move(config)) {
  if (config_.advertise_host.empty())
    config_.advertise_host = config_.listen_host;
}

TcpTransport::~TcpTransport() { Shutdown(); }

Status TcpTransport::Start() {
  std::unique_lock<std::mutex> lock(mu_);
  if (started_) return FailedPreconditionError("transport already started");

  in_addr listen_ip{};
  if (!ResolveIPv4(config_.listen_host, &listen_ip))
    return InvalidArgumentError("unresolvable listen host: " +
                                config_.listen_host);

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return UnavailableError("socket(): failed");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = listen_ip;
  addr.sin_port = htons(config_.listen_port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return UnavailableError("bind " + config_.listen_host + ":" +
                            std::to_string(config_.listen_port) + " failed: " +
                            std::strerror(errno));
  }
  if (listen(listen_fd_, 128) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return UnavailableError("listen(): failed");
  }
  socklen_t addr_len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  bound_port_ = ntohs(addr.sin_port);

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return UnavailableError("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  if (!is_hub()) {
    auto hub = DialLocked(Addr{config_.hub_host, config_.hub_port});
    if (!hub.ok()) {
      close(listen_fd_);
      close(epoll_fd_);
      close(wake_fd_);
      listen_fd_ = epoll_fd_ = wake_fd_ = -1;
      return hub.status();
    }
    (*hub)->is_hub_link = true;
    hub_fd_ = (*hub)->fd;
  }

  started_ = true;
  stopping_ = false;
  loop_thread_ = std::thread([this] { EventLoop(); });
  // Published under mu_ before any Send can observe started_ == true; the
  // loop's own first read happens after its first mu_ acquisition.
  loop_tid_ = loop_thread_.get_id();
  return Status::Ok();
}

void TcpTransport::Shutdown() {
  std::thread loop;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) {
      if (!started_) return;
    }
    stopping_ = true;
    loop = std::move(loop_thread_);
  }
  cv_.notify_all();
  WakeLoop();
  if (loop.joinable()) loop.join();

  // Loop is gone; tear down all OS and endpoint state single-threaded.
  std::vector<std::shared_ptr<Inbox>> inboxes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [fd, conn] : conns_) {
      close(fd);
      conn->fd = -1;
    }
    conns_.clear();
    routes_.clear();
    dialed_.clear();
    directory_.clear();
    for (auto& [id, inbox] : local_) inboxes.push_back(inbox);
    local_.clear();
    if (listen_fd_ >= 0) close(listen_fd_);
    if (epoll_fd_ >= 0) close(epoll_fd_);
    if (wake_fd_ >= 0) close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    started_ = false;
  }
  for (auto& inbox : inboxes) inbox->Close();
  cv_.notify_all();
}

Result<std::shared_ptr<Inbox>> TcpTransport::Register(EndpointId id,
                                                      std::size_t capacity) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!started_ || stopping_)
    return FailedPreconditionError("transport not running");
  auto [it, inserted] = local_.emplace(id, nullptr);
  if (!inserted)
    return AlreadyExistsError("endpoint already registered: " +
                              std::to_string(id));
  it->second = std::make_shared<Inbox>(capacity);
  std::shared_ptr<Inbox> inbox = it->second;

  if (is_hub()) {
    directory_[id] = Addr{config_.advertise_host, bound_port_};
    ++directory_version_;
    BroadcastDirectory();
    lock.unlock();
    WakeLoop();
    return inbox;
  }

  // Node: announce to the hub and wait for the directory snapshot that
  // includes this endpoint — once Register returns, every peer the hub
  // knew at announce time is dialable, and (because hub pushes ride the
  // same ordered connections as application frames) no peer can be told
  // about this endpoint before it can route back to it.
  auto hub_it = conns_.find(hub_fd_);
  if (hub_it == conns_.end()) {
    local_.erase(id);
    return UnavailableError("hub connection down");
  }
  SendHelloLocked(*hub_it->second);
  WakeLoop();
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::duration<double>(config_.register_timeout_s));
  const bool acked = cv_.wait_until(lock, deadline, [&] {
    return stopping_ || directory_.count(id) > 0 || !conns_.count(hub_fd_);
  });
  if (stopping_ || !acked || directory_.count(id) == 0) {
    local_.erase(id);
    inbox->Close();
    if (!acked)
      return TimeoutError("hub did not acknowledge endpoint " +
                          std::to_string(id));
    return UnavailableError("hub connection lost during register");
  }
  return inbox;
}

void TcpTransport::Unregister(EndpointId id) {
  std::shared_ptr<Inbox> inbox;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = local_.find(id);
    if (it == local_.end()) return;
    inbox = std::move(it->second);
    local_.erase(it);
    if (started_ && !stopping_) {
      // Tell every live peer this endpoint is gone, gracefully.
      for (auto& [fd, conn] : conns_) {
        if (conn->connecting) continue;
        EnqueueControl(*conn, WireKind::kGoodbye, id, {});
      }
      if (is_hub()) {
        directory_.erase(id);
        ++directory_version_;
        BroadcastDirectory();
      }
    }
  }
  WakeLoop();
  if (inbox) inbox->Close();
  NotifyDisconnect(id);
}

bool TcpTransport::Connected(EndpointId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return local_.count(id) > 0 || routes_.count(id) > 0 ||
         directory_.count(id) > 0;
}

Status TcpTransport::Send(EndpointId from, EndpointId to, Blob payload,
                          Blob attachment) {
  return SendResolved(from, to, std::move(payload), std::move(attachment),
                      /*apply_faults=*/true);
}

Status TcpTransport::SendMany(EndpointId from, EndpointId to,
                              std::vector<Parcel> parcels) {
  for (Parcel& parcel : parcels) {
    Status status = SendResolved(from, to, std::move(parcel.payload),
                                 std::move(parcel.attachment),
                                 /*apply_faults=*/true);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status TcpTransport::SendResolved(EndpointId from, EndpointId to, Blob payload,
                                  Blob attachment, bool apply_faults) {
  if (apply_faults) {
    if (const std::shared_ptr<FaultInjector> fault = fault_injector()) {
      const SendDecision decision = fault->OnSend(from, to);
      // Drops and partitions are silence, not errors — same contract as
      // the in-process bus, which is what exercises probe/retry paths.
      if (decision.drop) return Status::Ok();
      if (decision.corrupt) {
        if (!attachment.empty())
          attachment =
              FaultInjector::CorruptCopy(attachment, decision.corrupt_bit);
        else
          payload = FaultInjector::CorruptCopy(payload, decision.corrupt_bit);
      }
      if (decision.delay_s > 0.0) {
        const auto due = std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::duration<double>(decision.delay_s));
        {
          std::lock_guard<std::mutex> lock(mu_);
          for (int copy = 0; copy < decision.copies; ++copy)
            delayed_.push(
                DelayedSend{due, delay_seq_++, from, to, payload, attachment});
        }
        WakeLoop();
        return Status::Ok();
      }
      if (decision.copies > 1) {
        Status status = Status::Ok();
        for (int copy = 0; copy < decision.copies; ++copy)
          status = SendResolved(from, to, payload, attachment,
                                /*apply_faults=*/false);
        return status;
      }
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (!started_ || stopping_)
    return UnavailableError("transport shutting down");
  auto local_it = local_.find(to);
  if (local_it != local_.end()) {
    std::shared_ptr<Inbox> inbox = local_it->second;
    lock.unlock();
    return DeliverLocal(inbox, from, std::move(payload), std::move(attachment));
  }

  auto conn = RouteTo(to);
  if (!conn.ok()) return conn.status();
  std::shared_ptr<Conn> target = *conn;

  OutFrame frame;
  WireHeader header;
  header.kind = WireKind::kData;
  header.sender = from;
  header.dest = to;
  header.payload_len = static_cast<std::uint32_t>(payload.size());
  header.attach_len = static_cast<std::uint32_t>(attachment.size());
  EncodeWireHeader(header, frame.header);
  frame.payload = std::move(payload);
  frame.attachment = std::move(attachment);
  const std::size_t frame_bytes = frame.TotalBytes();

  // Backpressure: block the caller until the socket drains below the cap.
  // The event loop itself (the drainer, re-sending delayed frames) must
  // never block here — it bypasses the cap; delayed chaos frames are the
  // only traffic it originates on this path and they are already bounded.
  // A connection that dies mid-wait releases the sender and the frame
  // evaporates like any packet to a dead host.
  if (std::this_thread::get_id() != loop_tid_ &&
      target->outq_bytes + frame_bytes > config_.send_queue_limit_bytes) {
    ++target->backpressure_stalls;
    cv_.wait(lock, [&] {
      return stopping_ || target->fd < 0 ||
             target->outq_bytes + frame_bytes <=
                 config_.send_queue_limit_bytes;
    });
    if (stopping_) return UnavailableError("transport shutting down");
    if (target->fd < 0) return Status::Ok();  // peer died: silence
  }
  target->outq.push_back(std::move(frame));
  target->outq_bytes += frame_bytes;
  target->peak_queue_bytes =
      std::max<std::uint64_t>(target->peak_queue_bytes, target->outq_bytes);
  lock.unlock();
  WakeLoop();
  return Status::Ok();
}

Status TcpTransport::DeliverLocal(const std::shared_ptr<Inbox>& inbox,
                                  EndpointId from, Blob payload,
                                  Blob attachment) {
  const std::uint64_t frame_bytes = payload.size() + attachment.size();
  if (!inbox->Send(Frame{from, std::move(payload), std::move(attachment)}))
    return UnavailableError("inbox closed");
  CountDelivery(frame_bytes);
  return Status::Ok();
}

Result<std::shared_ptr<TcpTransport::Conn>> TcpTransport::RouteTo(
    EndpointId to) {
  auto route = routes_.find(to);
  if (route != routes_.end()) {
    auto conn = conns_.find(route->second);
    if (conn != conns_.end()) return conn->second;
    routes_.erase(route);
  }
  auto dir = directory_.find(to);
  if (dir == directory_.end())
    return NotFoundError("endpoint gone: " + std::to_string(to));
  const std::string key = dir->second.Key();
  auto dialed = dialed_.find(key);
  if (dialed != dialed_.end()) {
    auto conn = conns_.find(dialed->second);
    if (conn != conns_.end()) {
      routes_[to] = dialed->second;
      conn->second->endpoints.insert(to);
      return conn->second;
    }
    dialed_.erase(dialed);
  }
  auto conn = DialLocked(dir->second);
  if (!conn.ok()) return conn.status();
  routes_[to] = (*conn)->fd;
  (*conn)->endpoints.insert(to);
  return *conn;
}

Result<std::shared_ptr<TcpTransport::Conn>> TcpTransport::DialLocked(
    const Addr& addr) {
  in_addr ip{};
  if (!ResolveIPv4(addr.host, &ip))
    return InvalidArgumentError("unresolvable host: " + addr.host);
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return UnavailableError("socket(): failed");
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr = ip;
  sa.sin_port = htons(addr.port);
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    return UnavailableError("connect to " + addr.Key() + " failed: " +
                            std::strerror(errno));
  }

  auto conn = std::make_shared<Conn>();
  conn->fd = fd;
  conn->remote_addr = addr.Key();
  conn->dial_key = addr.Key();
  conn->connecting = (rc != 0);
  conn->decoder = FrameDecoder(config_.framing);
  conns_[fd] = conn;
  dialed_[addr.Key()] = fd;

  epoll_event ev{};
  ev.events = EPOLLIN | (conn->connecting ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  conn->want_write = conn->connecting;
  if (epoll_fd_ >= 0) epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);

  SendHelloLocked(*conn);
  return conn;
}

void TcpTransport::SendHelloLocked(Conn& conn) {
  std::vector<std::uint8_t> body;
  wire::AppendU32(body, static_cast<std::uint32_t>(local_.size()));
  for (const auto& [id, inbox] : local_) wire::AppendU64(body, id);
  wire::AppendString(body, config_.advertise_host);
  wire::AppendU32(body, bound_port_);
  EnqueueControl(conn, WireKind::kHello, 0, std::move(body));
}

std::vector<std::uint8_t> TcpTransport::EncodeDirectoryLocked() const {
  std::vector<std::uint8_t> body;
  wire::AppendU64(body, directory_version_);
  wire::AppendU32(body, static_cast<std::uint32_t>(directory_.size()));
  for (const auto& [id, addr] : directory_) {
    wire::AppendU64(body, id);
    wire::AppendString(body, addr.host);
    wire::AppendU32(body, addr.port);
  }
  return body;
}

void TcpTransport::BroadcastDirectory() {
  std::vector<std::uint8_t> body = EncodeDirectoryLocked();
  for (auto& [fd, conn] : conns_) {
    if (conn->connecting) continue;
    EnqueueControl(*conn, WireKind::kPeers, 0, body);
  }
}

void TcpTransport::EnqueueControl(Conn& conn, WireKind kind, EndpointId sender,
                                  std::vector<std::uint8_t> body) {
  OutFrame frame;
  WireHeader header;
  header.kind = kind;
  header.sender = sender;
  header.dest = 0;
  header.payload_len = static_cast<std::uint32_t>(body.size());
  header.attach_len = 0;
  EncodeWireHeader(header, frame.header);
  frame.payload = Blob(std::move(body));
  const std::size_t frame_bytes = frame.TotalBytes();
  // Control frames bypass the backpressure cap: they are tiny, and the
  // event loop (which originates most of them) must never block.
  conn.outq.push_back(std::move(frame));
  conn.outq_bytes += frame_bytes;
  conn.peak_queue_bytes =
      std::max<std::uint64_t>(conn.peak_queue_bytes, conn.outq_bytes);
}

std::vector<ConnectionStats> TcpTransport::ConnectionsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ConnectionStats> out;
  out.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) {
    ConnectionStats stats;
    stats.peer = conn->endpoints.empty() ? 0 : *conn->endpoints.begin();
    stats.remote_addr = conn->remote_addr;
    stats.frames_sent = conn->frames_sent;
    stats.bytes_sent = conn->bytes_sent;
    stats.frames_received = conn->frames_received;
    stats.bytes_received = conn->bytes_received;
    stats.send_queue_bytes = conn->outq_bytes;
    stats.peak_queue_bytes = conn->peak_queue_bytes;
    stats.backpressure_stalls = conn->backpressure_stalls;
    out.push_back(std::move(stats));
  }
  return out;
}

void TcpTransport::WakeLoop() {
  std::uint64_t one = 1;
  if (wake_fd_ >= 0) {
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void TcpTransport::EventLoop() {
  std::array<epoll_event, 64> events;
  while (true) {
    int timeout_ms = 200;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      if (!delayed_.empty()) {
        const auto now = std::chrono::steady_clock::now();
        const auto due = delayed_.top().due;
        timeout_ms =
            due <= now
                ? 0
                : static_cast<int>(std::min<std::int64_t>(
                      timeout_ms,
                      std::chrono::duration_cast<std::chrono::milliseconds>(
                          due - now)
                              .count() +
                          1));
      }
    }
    const int n =
        epoll_wait(epoll_fd_, events.data(),
                   static_cast<int>(events.size()), timeout_ms);
    if (n < 0 && errno != EINTR) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
      } else if (fd == listen_fd_) {
        HandleListener();
      } else {
        HandleConn(fd, events[i].events);
      }
    }
    PumpDelayed();

    // Flush every connection with queued output; close the ones that died.
    std::vector<int> dead;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [fd, conn] : conns_) {
        if (conn->connecting || conn->outq.empty()) continue;
        FlushConn(*conn);
        if (conn->fd < 0) dead.push_back(fd);
      }
    }
    for (int fd : dead) CloseConn(fd, "write failed");
  }
}

void TcpTransport::HandleListener() {
  while (true) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->remote_addr = PeerAddrString(fd);
    conn->decoder = FrameDecoder(config_.framing);
    {
      std::lock_guard<std::mutex> lock(mu_);
      conns_[fd] = conn;
      // Greet inbound peers immediately so both sides learn each other's
      // endpoints regardless of who dialed.
      SendHelloLocked(*conn);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void TcpTransport::HandleConn(int fd, std::uint32_t events) {
  std::shared_ptr<Conn> conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    conn = it->second;
  }
  if (events & (EPOLLERR | EPOLLHUP)) {
    CloseConn(fd, "socket error/hangup");
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    bool connect_failed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (conn->connecting) {
        int err = 0;
        socklen_t len = sizeof(err);
        getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err == 0) {
          conn->connecting = false;
          ArmWrite(*conn, !conn->outq.empty());
        } else {
          connect_failed = true;
        }
      }
    }
    if (connect_failed) {
      CloseConn(fd, "connect failed");
      return;
    }
  }
  if ((events & EPOLLIN) != 0) ReadConn(conn);
}

void TcpTransport::ReadConn(std::shared_ptr<Conn> conn) {
  std::array<std::uint8_t, 64 * 1024> buf;
  while (true) {
    const ssize_t n = read(conn->fd, buf.data(), buf.size());
    if (n > 0) {
      Status fed =
          conn->decoder.Feed(std::span<const std::uint8_t>(buf.data(),
                                                           std::size_t(n)));
      {
        std::lock_guard<std::mutex> lock(mu_);
        conn->bytes_received += std::uint64_t(n);
      }
      while (auto frame = conn->decoder.Next())
        ProcessFrame(conn, std::move(*frame));
      if (!fed.ok()) {
        // Desynced stream: unrecoverable; drop the connection.
        CloseConn(conn->fd, "framing desync");
        return;
      }
      continue;
    }
    if (n == 0) {
      CloseConn(conn->fd, "peer closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConn(conn->fd, "read error");
    return;
  }
}

void TcpTransport::ProcessFrame(const std::shared_ptr<Conn>& conn,
                                DecodedWireFrame frame) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++conn->frames_received;
  }
  switch (frame.header.kind) {
    case WireKind::kData: {
      std::shared_ptr<Inbox> inbox;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = local_.find(frame.header.dest);
        if (it == local_.end()) return;  // stale dest: drop silently
        inbox = it->second;
      }
      (void)DeliverLocal(inbox, frame.header.sender, std::move(frame.payload),
                         std::move(frame.attachment));
      return;
    }
    case WireKind::kHello:
      HandleHello(conn, frame);
      return;
    case WireKind::kPeers:
      HandlePeers(frame);
      return;
    case WireKind::kGoodbye:
      HandleGoodbye(conn, frame);
      return;
  }
}

void TcpTransport::HandleHello(const std::shared_ptr<Conn>& conn,
                               const DecodedWireFrame& frame) {
  std::span<const std::uint8_t> in = frame.payload.span();
  std::uint32_t count = 0;
  if (!wire::TakeU32(in, count)) return;
  std::vector<EndpointId> ids;
  // A hello lists only endpoints the sender actually hosts; anything
  // claiming more ids than bytes allow is malformed and ignored.
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t id = 0;
    if (!wire::TakeU64(in, id)) return;
    ids.push_back(id);
  }
  std::string host;
  std::uint32_t port = 0;
  if (!wire::TakeString(in, host) || !wire::TakeU32(in, port)) return;
  if (port > 0xffff) return;

  {
    std::lock_guard<std::mutex> lock(mu_);
    const Addr addr{host, static_cast<std::uint16_t>(port)};
    for (EndpointId id : ids) {
      conn->endpoints.insert(id);
      routes_[id] = conn->fd;
    }
    if (!ids.empty() && conn->dial_key.empty()) {
      // Inbound connection: remember the peer's advertised address so a
      // later outbound send to its endpoints reuses this socket instead
      // of dialing a second one.
      auto existing = dialed_.find(addr.Key());
      if (existing == dialed_.end()) dialed_[addr.Key()] = conn->fd;
    }
    if (is_hub()) {
      bool changed = false;
      for (EndpointId id : ids) {
        Addr& slot = directory_[id];
        if (slot.host != addr.host || slot.port != addr.port) {
          slot = addr;
          changed = true;
        }
      }
      if (changed || !ids.empty()) {
        ++directory_version_;
        BroadcastDirectory();
      } else {
        // Even an empty hello gets the current directory so a node that
        // connected before registering anything still learns the map.
        EnqueueControl(*conn, WireKind::kPeers, 0, EncodeDirectoryLocked());
      }
    }
  }
  cv_.notify_all();
}

void TcpTransport::HandlePeers(const DecodedWireFrame& frame) {
  std::span<const std::uint8_t> in = frame.payload.span();
  std::uint64_t version = 0;
  std::uint32_t count = 0;
  if (!wire::TakeU64(in, version) || !wire::TakeU32(in, count)) return;
  std::map<EndpointId, Addr> next;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t id = 0;
    std::string host;
    std::uint32_t port = 0;
    if (!wire::TakeU64(in, id) || !wire::TakeString(in, host) ||
        !wire::TakeU32(in, port) || port > 0xffff)
      return;
    next[id] = Addr{std::move(host), static_cast<std::uint16_t>(port)};
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (version < directory_version_) return;  // stale snapshot
    directory_ = std::move(next);
    directory_version_ = version;
  }
  cv_.notify_all();
}

void TcpTransport::HandleGoodbye(const std::shared_ptr<Conn>& conn,
                                 const DecodedWireFrame& frame) {
  const EndpointId id = frame.header.sender;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn->endpoints.erase(id);
    auto route = routes_.find(id);
    if (route != routes_.end() && route->second == conn->fd)
      routes_.erase(route);
    if (is_hub()) {
      if (directory_.erase(id) > 0) {
        ++directory_version_;
        BroadcastDirectory();
      }
    }
  }
  cv_.notify_all();
  NotifyDisconnect(id);
}

void TcpTransport::FlushConn(Conn& conn) {
  while (!conn.outq.empty()) {
    std::array<iovec, kMaxFramesPerWritev * 3> iov;
    std::size_t niov = 0;
    std::size_t skip = conn.front_offset;
    for (const OutFrame& frame : conn.outq) {
      if (niov + 3 > iov.size()) break;
      const std::array<std::pair<const std::uint8_t*, std::size_t>, 3> segs = {
          std::pair<const std::uint8_t*, std::size_t>{frame.header.data(),
                                                      frame.header.size()},
          {frame.payload.data(), frame.payload.size()},
          {frame.attachment.data(), frame.attachment.size()}};
      for (const auto& [data, size] : segs) {
        if (size == 0) continue;
        if (skip >= size) {
          skip -= size;
          continue;
        }
        iov[niov].iov_base = const_cast<std::uint8_t*>(data) + skip;
        iov[niov].iov_len = size - skip;
        skip = 0;
        ++niov;
      }
    }
    if (niov == 0) return;
    msghdr msg{};
    msg.msg_iov = iov.data();
    msg.msg_iovlen = niov;
    const ssize_t sent = sendmsg(conn.fd, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        ArmWrite(conn, true);
        return;
      }
      conn.fd = -1;  // caller closes via CloseConn
      cv_.notify_all();
      return;
    }
    conn.bytes_sent += std::uint64_t(sent);
    std::size_t remaining = std::size_t(sent);
    while (remaining > 0 && !conn.outq.empty()) {
      const std::size_t front_total = conn.outq.front().TotalBytes();
      const std::size_t front_left = front_total - conn.front_offset;
      if (remaining >= front_left) {
        remaining -= front_left;
        conn.outq_bytes -= front_total;
        conn.front_offset = 0;
        ++conn.frames_sent;
        conn.outq.pop_front();
      } else {
        conn.front_offset += remaining;
        remaining = 0;
      }
    }
    cv_.notify_all();  // queue drained below the cap: release stalled senders
  }
  ArmWrite(conn, false);
}

void TcpTransport::ArmWrite(Conn& conn, bool enable) {
  if (conn.want_write == enable || conn.fd < 0) return;
  conn.want_write = enable;
  epoll_event ev{};
  ev.events = EPOLLIN | (enable ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void TcpTransport::DropRoutesVia(int fd, std::vector<EndpointId>* lost) {
  for (auto it = routes_.begin(); it != routes_.end();) {
    if (it->second == fd) {
      lost->push_back(it->first);
      it = routes_.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpTransport::CloseConn(int fd, const char* why) {
  (void)why;
  std::shared_ptr<Conn> conn;
  std::vector<EndpointId> lost;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    conn = it->second;
    conns_.erase(it);
    if (!conn->dial_key.empty()) {
      auto dialed = dialed_.find(conn->dial_key);
      if (dialed != dialed_.end() && dialed->second == fd)
        dialed_.erase(dialed);
    } else {
      for (auto dialed = dialed_.begin(); dialed != dialed_.end();) {
        if (dialed->second == fd)
          dialed = dialed_.erase(dialed);
        else
          ++dialed;
      }
    }
    DropRoutesVia(fd, &lost);
    for (EndpointId id : conn->endpoints)
      if (std::find(lost.begin(), lost.end(), id) == lost.end())
        lost.push_back(id);
    if (is_hub()) {
      // A connection dropping at the hub means those endpoints' process is
      // gone (every node holds its hub link for life): evict them from the
      // directory so nobody dials a corpse, and tell the survivors.
      bool changed = false;
      for (EndpointId id : lost) changed |= directory_.erase(id) > 0;
      if (changed) {
        ++directory_version_;
        BroadcastDirectory();
      }
    } else if (conn->is_hub_link) {
      // Losing the hub orphans this node: every remote endpoint becomes
      // unreachable (the directory is hub-fed), so report them all gone.
      for (const auto& [id, addr] : directory_)
        if (!local_.count(id) &&
            std::find(lost.begin(), lost.end(), id) == lost.end())
          lost.push_back(id);
      directory_.clear();
      hub_fd_ = -1;
    }
    conn->fd = -1;
  }
  if (fd >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    close(fd);
  }
  cv_.notify_all();
  for (EndpointId id : lost) NotifyDisconnect(id);
}

void TcpTransport::PumpDelayed() {
  while (true) {
    DelayedSend next;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (delayed_.empty() ||
          delayed_.top().due > std::chrono::steady_clock::now())
        return;
      next = std::move(const_cast<DelayedSend&>(delayed_.top()));
      delayed_.pop();
    }
    // Re-sent without fault re-evaluation (the delay *was* the verdict).
    // A destination that vanished while the frame was parked just drops
    // it — exactly what a delayed packet to a dead host would do.
    (void)SendResolved(next.from, next.to, std::move(next.payload),
                       std::move(next.attachment), /*apply_faults=*/false);
  }
}

}  // namespace vinelet::net
