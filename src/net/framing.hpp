// Length-prefixed wire framing for the TCP transport.
//
// Every byte that crosses a socket is one wire frame:
//
//   offset  0: u8  magic0 = 'v'
//   offset  1: u8  magic1 = 'F'
//   offset  2: u8  kind        (WireKind)
//   offset  3: u8  reserved = 0
//   offset  4: u64 sender      (endpoint id, little-endian)
//   offset 12: u64 dest        (endpoint id, little-endian)
//   offset 20: u32 payload_len
//   offset 24: u32 attach_len
//   offset 28: payload bytes, then attachment bytes
//
// The split between payload and attachment mirrors net::Frame: the payload
// is the protocol header (small), the attachment the bulk content (file
// chunks, blob fetches).  On the send side both ride as separate iovecs of
// one writev, so bulk bytes are never copied into the header buffer; on the
// receive side the decoder materializes the body as one refcounted Blob and
// hands out zero-copy slices.
//
// The decoder is a standalone, incrementally-fed component: Feed() accepts
// arbitrary byte runs (single bytes, half frames, many coalesced frames)
// and Next() pops complete frames in order.  All header fields are
// validated before any allocation sized by them — bad magic, an unknown
// kind, or a length beyond the configured limits poisons the stream with a
// kDataLoss status (a desynced TCP stream cannot be resynchronized; the
// connection must be dropped).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "net/transport.hpp"

namespace vinelet::net {

/// Transport-level frame kinds.  kData carries application traffic; the
/// rest implement the transport's own membership/addressing handshake.
enum class WireKind : std::uint8_t {
  kData = 1,     ///< Application frame: payload (+ attachment) for `dest`.
  kHello = 2,    ///< Node -> hub / peer: "these endpoints live here".
  kPeers = 3,    ///< Hub -> nodes: full address directory snapshot.
  kGoodbye = 4,  ///< Graceful departure of one endpoint.
};

constexpr std::size_t kWireHeaderSize = 28;
constexpr std::uint8_t kWireMagic0 = 'v';
constexpr std::uint8_t kWireMagic1 = 'F';

struct WireHeader {
  WireKind kind = WireKind::kData;
  EndpointId sender = 0;
  EndpointId dest = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t attach_len = 0;
};

/// Caps applied before any length-driven allocation.  A frame announcing
/// more than these is treated as garbage, not as a huge allocation request.
struct FramingLimits {
  std::uint32_t max_payload_bytes = 64u << 20;        // 64 MiB
  std::uint32_t max_attachment_bytes = 1u << 30;      // 1 GiB
};

/// One complete frame popped from the decoder.  `payload` and `attachment`
/// are zero-copy slices of the same refcounted body allocation.
struct DecodedWireFrame {
  WireHeader header;
  Blob payload;
  Blob attachment;
};

/// Serializes `header` into `out`.
void EncodeWireHeader(const WireHeader& header,
                      std::array<std::uint8_t, kWireHeaderSize>& out);

// Minimal primitives for the transport's own control payloads (kHello /
// kPeers bodies).  The application protocol uses serde::Archive; the
// transport stays below that layer and hand-rolls its two tiny messages.
namespace wire {
void AppendU32(std::vector<std::uint8_t>& out, std::uint32_t value);
void AppendU64(std::vector<std::uint8_t>& out, std::uint64_t value);
void AppendString(std::vector<std::uint8_t>& out, std::string_view text);
/// Each reads from the front of `in` and advances it; false on underrun.
bool TakeU32(std::span<const std::uint8_t>& in, std::uint32_t& value);
bool TakeU64(std::span<const std::uint8_t>& in, std::uint64_t& value);
bool TakeString(std::span<const std::uint8_t>& in, std::string& text);
}  // namespace wire

/// Parses and validates a header.  kDataLoss on bad magic, unknown kind,
/// a non-zero reserved byte, or lengths beyond `limits`.
Result<WireHeader> DecodeWireHeader(
    std::span<const std::uint8_t, kWireHeaderSize> raw,
    const FramingLimits& limits);

/// Incremental frame decoder (one per connection).
class FrameDecoder {
 public:
  explicit FrameDecoder(FramingLimits limits = {}) : limits_(limits) {}

  /// Appends received bytes.  Returns kDataLoss (sticky) the moment a
  /// malformed header is seen; previously completed frames remain poppable.
  Status Feed(std::span<const std::uint8_t> bytes);

  /// Pops the next complete frame, or nullopt when more bytes are needed.
  std::optional<DecodedWireFrame> Next();

  /// Sticky stream state; a failed decoder rejects further Feeds.
  const Status& status() const noexcept { return status_; }

  /// Bytes buffered toward the frame currently being assembled.
  std::size_t buffered_bytes() const noexcept {
    return header_fill_ + body_fill_;
  }

 private:
  FramingLimits limits_;
  Status status_ = Status::Ok();

  // Assembly state for the in-progress frame.
  std::array<std::uint8_t, kWireHeaderSize> header_raw_{};
  std::size_t header_fill_ = 0;
  bool have_header_ = false;
  WireHeader header_{};
  std::vector<std::uint8_t> body_;  // payload + attachment
  std::size_t body_fill_ = 0;

  std::deque<DecodedWireFrame> ready_;
};

}  // namespace vinelet::net
