// Seeded, policy-driven fault injection for the in-process fabric.
//
// A FaultPlan describes *what* can go wrong (per-link drop/duplicate/
// corrupt/delay probabilities, per-worker setup/invocation/task failure
// rates, straggler slow-downs, and a schedule of worker kills); a
// FaultInjector turns the plan into concrete decisions.  Determinism is the
// whole point: every (from, to) link and every worker endpoint gets its own
// RNG stream derived from (plan.seed, link/endpoint key), so the k-th
// message on a link receives the same verdict no matter how unrelated
// links interleave across threads.  The same plan drives the DES backend
// (sim::SimConfig::fault), so a `(seed, schedule)` pair replays identically
// in simulation and in the real runtime.
//
// Dropped and blocked messages return Status::Ok() to the sender — a
// partition looks like silence, not a TCP reset — which is exactly what
// exercises the manager's probe/retry paths.  Corruption never mutates a
// shared refcounted Blob in place (that would corrupt the sender's store);
// it deep-copies the bytes and flips one bit in the copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace vinelet::telemetry {
class FlightRecorder;
}

namespace vinelet::net {

using EndpointId = std::uint64_t;

/// Per-link message fault probabilities.  All default to "no faults".
struct LinkFaults {
  double drop_p = 0.0;     ///< Message silently vanishes.
  double dup_p = 0.0;      ///< Message delivered twice (tests idempotence).
  double corrupt_p = 0.0;  ///< One bit flipped in a deep copy of the bytes.
  double delay_p = 0.0;    ///< Message held back, causing reordering.
  double delay_min_s = 0.0;
  double delay_max_s = 0.0;
};

/// Per-worker execution fault probabilities.
struct WorkerFaults {
  double setup_failure_p = 0.0;       ///< Library context setup fails.
  double invocation_failure_p = 0.0;  ///< A library invocation fails.
  double task_failure_p = 0.0;        ///< An ordinary task fails.
  double straggler_p = 0.0;           ///< Execution slowed by straggler_delay_s.
  double straggler_delay_s = 0.0;
};

/// A scheduled abrupt worker death.  The runtime harness (and the DES
/// mirror) interpret `at_s` as seconds since workload start.
struct KillEvent {
  double at_s = 0.0;
  EndpointId worker = 0;
};

/// The full schedule: seed + policies + kill list.  Value type; copy it
/// into SimConfig to replay the same chaos in the simulator.
struct FaultPlan {
  std::uint64_t seed = 1;
  LinkFaults link;
  WorkerFaults worker;
  std::vector<KillEvent> kills;

  bool Quiet() const noexcept {
    return link.drop_p == 0.0 && link.dup_p == 0.0 && link.corrupt_p == 0.0 &&
           link.delay_p == 0.0 && worker.setup_failure_p == 0.0 &&
           worker.invocation_failure_p == 0.0 && worker.task_failure_p == 0.0 &&
           worker.straggler_p == 0.0 && kills.empty();
  }
};

/// The verdict for one Send.  `copies == 0` with drop unset never happens;
/// a dropped message has drop == true and the rest is ignored.
struct SendDecision {
  bool drop = false;
  bool corrupt = false;
  int copies = 1;        ///< 2 when duplicated.
  double delay_s = 0.0;  ///< > 0: hold back (reorders behind later sends).
  std::uint64_t corrupt_bit = 0;  ///< Which bit to flip when corrupt is set.
};

/// Counters of injected faults (monotonic, readable from any thread).
struct FaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t delayed = 0;
  std::uint64_t blocked = 0;
  std::uint64_t setup_failures = 0;
  std::uint64_t invocation_failures = 0;
  std::uint64_t task_failures = 0;
  std::uint64_t stragglers = 0;

  std::uint64_t TotalInjected() const noexcept {
    return dropped + duplicated + corrupted + delayed + blocked +
           setup_failures + invocation_failures + task_failures + stragglers;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const noexcept { return plan_; }

  /// Injected faults land in the flight recorder (tags "inj-drop",
  /// "inj-dup", ...) so crash dumps show the schedule.  Pass nullptr to
  /// clear.  The recorder must outlive the injector.
  void SetFlightRecorder(telemetry::FlightRecorder* flight) noexcept {
    flight_.store(flight, std::memory_order_release);
  }

  /// The verdict for one message on the (from, to) link.  Thread-safe;
  /// decisions on a given link form a deterministic stream.
  SendDecision OnSend(EndpointId from, EndpointId to);

  /// Explicit directional partition control (deterministic, not random).
  void BlockLink(EndpointId from, EndpointId to, bool blocked);
  /// Symmetric partition between two endpoints.
  void Partition(EndpointId a, EndpointId b, bool partitioned);
  bool LinkBlocked(EndpointId from, EndpointId to) const;

  /// Worker-side hooks: each draws from the worker's own stream.
  bool InjectSetupFailure(EndpointId worker);
  bool InjectInvocationFailure(EndpointId worker);
  bool InjectTaskFailure(EndpointId worker);
  /// 0 when this execution is not a straggler.
  double StragglerDelayS(EndpointId worker);

  FaultStats stats() const;

  /// Deep-copies `bytes` and flips one deterministically chosen bit.
  /// Exposed for the DES mirror and tests; empty blobs pass through.
  static Blob CorruptCopy(const Blob& bytes, std::uint64_t which_bit);

 private:
  struct Counters {
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> duplicated{0};
    std::atomic<std::uint64_t> corrupted{0};
    std::atomic<std::uint64_t> delayed{0};
    std::atomic<std::uint64_t> blocked{0};
    std::atomic<std::uint64_t> setup_failures{0};
    std::atomic<std::uint64_t> invocation_failures{0};
    std::atomic<std::uint64_t> task_failures{0};
    std::atomic<std::uint64_t> stragglers{0};
  };

  Rng& StreamFor(std::uint64_t key);  // Caller must hold mu_.
  void RecordFault(const char* tag, EndpointId from, EndpointId to);

  const FaultPlan plan_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Rng> streams_;
  std::unordered_set<std::uint64_t> blocked_links_;
  Counters counters_;
  std::atomic<telemetry::FlightRecorder*> flight_{nullptr};
};

}  // namespace vinelet::net
