#include "net/transport.hpp"

#include <utility>

namespace vinelet::net {

Status Transport::SendMany(EndpointId from, EndpointId to,
                           std::vector<Parcel> parcels) {
  for (Parcel& parcel : parcels) {
    Status status =
        Send(from, to, std::move(parcel.payload), std::move(parcel.attachment));
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

void Transport::SetDisconnectListener(
    std::function<void(EndpointId)> listener) {
  std::lock_guard<std::mutex> lock(listener_mu_);
  disconnect_listener_ = std::move(listener);
}

void Transport::NotifyDisconnect(EndpointId id) {
  std::function<void(EndpointId)> listener;
  {
    std::lock_guard<std::mutex> lock(listener_mu_);
    listener = disconnect_listener_;
  }
  if (listener) listener(id);
}

void Transport::SetFaultInjector(std::shared_ptr<FaultInjector> injector) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  fault_ = std::move(injector);
}

std::shared_ptr<FaultInjector> Transport::fault_injector() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return fault_;
}

}  // namespace vinelet::net
