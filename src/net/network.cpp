#include "net/network.hpp"

#include <utility>

#include "net/fault.hpp"

namespace vinelet::net {

Network::~Network() {
  std::thread pump;
  {
    std::lock_guard<std::mutex> lock(delay_mu_);
    delay_stop_ = true;
    pump = std::move(delay_thread_);
  }
  delay_cv_.notify_all();
  if (pump.joinable()) pump.join();
}

Result<std::shared_ptr<Inbox>> Network::Register(EndpointId id,
                                                 std::size_t capacity) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.inboxes.emplace(id, nullptr);
  if (!inserted)
    return AlreadyExistsError("endpoint already registered: " +
                              std::to_string(id));
  it->second = std::make_shared<Inbox>(capacity);
  return it->second;
}

void Network::Unregister(EndpointId id) {
  std::shared_ptr<Inbox> inbox;
  {
    Shard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.inboxes.find(id);
    if (it == shard.inboxes.end()) return;
    inbox = std::move(it->second);
    shard.inboxes.erase(it);
  }
  inbox->Close();
  NotifyDisconnect(id);
}

bool Network::Connected(EndpointId id) const {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.inboxes.contains(id);
}

Status Network::Send(EndpointId from, EndpointId to, Blob payload,
                     Blob attachment) {
  std::shared_ptr<Inbox> inbox;
  {
    Shard& shard = ShardFor(to);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.inboxes.find(to);
    if (it == shard.inboxes.end())
      return NotFoundError("endpoint gone: " + std::to_string(to));
    inbox = it->second;
  }
  return SendResolved(inbox, fault_injector(), from, to, std::move(payload),
                      std::move(attachment));
}

Status Network::SendMany(EndpointId from, EndpointId to,
                         std::vector<Parcel> parcels) {
  std::shared_ptr<Inbox> inbox;
  {
    Shard& shard = ShardFor(to);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.inboxes.find(to);
    if (it == shard.inboxes.end())
      return NotFoundError("endpoint gone: " + std::to_string(to));
    inbox = it->second;
  }
  const std::shared_ptr<FaultInjector> fault = fault_injector();
  for (Parcel& parcel : parcels) {
    Status status = SendResolved(inbox, fault, from, to,
                                 std::move(parcel.payload),
                                 std::move(parcel.attachment));
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status Network::SendResolved(const std::shared_ptr<Inbox>& inbox,
                             const std::shared_ptr<FaultInjector>& fault,
                             EndpointId from, EndpointId to, Blob payload,
                             Blob attachment) {
  if (fault) {
    const SendDecision decision = fault->OnSend(from, to);
    // A dropped or partitioned message looks like success to the sender;
    // the loss only surfaces through timeouts/probes, as on a real network.
    if (decision.drop) return Status::Ok();
    if (decision.corrupt) {
      // Flip a bit in a deep copy: the original Blob may be a refcounted
      // view into the sender's store and must stay pristine.
      if (!attachment.empty())
        attachment =
            FaultInjector::CorruptCopy(attachment, decision.corrupt_bit);
      else
        payload = FaultInjector::CorruptCopy(payload, decision.corrupt_bit);
    }
    if (decision.delay_s > 0.0) {
      for (int copy = 0; copy < decision.copies; ++copy)
        EnqueueDelayed(inbox, Frame{from, payload, attachment},
                       decision.delay_s);
      return Status::Ok();
    }
    if (decision.copies > 1) {
      Status status = Status::Ok();
      for (int copy = 0; copy < decision.copies; ++copy)
        status = Deliver(inbox, Frame{from, payload, attachment});
      return status;
    }
  }
  return Deliver(inbox,
                 Frame{from, std::move(payload), std::move(attachment)});
}

Status Network::Deliver(const std::shared_ptr<Inbox>& inbox, Frame frame) {
  // The push (which may block on a bounded inbox) happens lock-free with
  // respect to the registry, so one slow receiver never stalls the fabric.
  const std::uint64_t frame_bytes =
      frame.payload.size() + frame.attachment.size();
  if (!inbox->Send(std::move(frame)))
    return UnavailableError("inbox closed");
  CountDelivery(frame_bytes);
  return Status::Ok();
}

void Network::EnqueueDelayed(std::shared_ptr<Inbox> inbox, Frame frame,
                             double delay_s) {
  const auto due = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::duration<double>(delay_s));
  {
    std::lock_guard<std::mutex> lock(delay_mu_);
    delayed_.push(
        DelayedFrame{due, delay_seq_++, std::move(inbox), std::move(frame)});
    if (!delay_thread_.joinable() && !delay_stop_)
      delay_thread_ = std::thread([this] { DelayPump(); });
  }
  delay_cv_.notify_all();
}

void Network::DelayPump() {
  std::unique_lock<std::mutex> lock(delay_mu_);
  while (true) {
    if (delay_stop_) return;
    if (delayed_.empty()) {
      delay_cv_.wait(lock,
                     [this] { return delay_stop_ || !delayed_.empty(); });
      continue;
    }
    const auto due = delayed_.top().due;
    if (std::chrono::steady_clock::now() < due) {
      delay_cv_.wait_until(lock, due);
      continue;
    }
    DelayedFrame next = std::move(const_cast<DelayedFrame&>(delayed_.top()));
    delayed_.pop();
    lock.unlock();
    // A closed inbox rejects the late push — the frame just evaporates,
    // which is exactly what a delayed packet to a dead host would do.
    (void)Deliver(next.inbox, std::move(next.frame));
    lock.lock();
  }
}

}  // namespace vinelet::net
