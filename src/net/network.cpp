#include "net/network.hpp"

namespace vinelet::net {

Result<std::shared_ptr<Inbox>> Network::Register(EndpointId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = inboxes_.emplace(id, nullptr);
  if (!inserted)
    return AlreadyExistsError("endpoint already registered: " +
                              std::to_string(id));
  it->second = std::make_shared<Inbox>();
  return it->second;
}

void Network::Unregister(EndpointId id) {
  std::shared_ptr<Inbox> inbox;
  std::function<void(EndpointId)> listener;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inboxes_.find(id);
    if (it == inboxes_.end()) return;
    inbox = std::move(it->second);
    inboxes_.erase(it);
    listener = disconnect_listener_;
  }
  inbox->Close();
  if (listener) listener(id);
}

void Network::SetDisconnectListener(
    std::function<void(EndpointId)> listener) {
  std::lock_guard<std::mutex> lock(mu_);
  disconnect_listener_ = std::move(listener);
}

bool Network::Connected(EndpointId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return inboxes_.contains(id);
}

Status Network::Send(EndpointId from, EndpointId to, Blob payload) {
  std::shared_ptr<Inbox> inbox;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inboxes_.find(to);
    if (it == inboxes_.end())
      return NotFoundError("endpoint gone: " + std::to_string(to));
    inbox = it->second;
    ++frames_;
    bytes_ += payload.size();
  }
  if (!inbox->Send(Frame{from, std::move(payload)}))
    return UnavailableError("inbox closed: " + std::to_string(to));
  return Status::Ok();
}

std::uint64_t Network::frames_delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_;
}

std::uint64_t Network::bytes_delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

}  // namespace vinelet::net
