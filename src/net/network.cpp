#include "net/network.hpp"

namespace vinelet::net {

Result<std::shared_ptr<Inbox>> Network::Register(EndpointId id,
                                                 std::size_t capacity) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.inboxes.emplace(id, nullptr);
  if (!inserted)
    return AlreadyExistsError("endpoint already registered: " +
                              std::to_string(id));
  it->second = std::make_shared<Inbox>(capacity);
  return it->second;
}

void Network::Unregister(EndpointId id) {
  std::shared_ptr<Inbox> inbox;
  {
    Shard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.inboxes.find(id);
    if (it == shard.inboxes.end()) return;
    inbox = std::move(it->second);
    shard.inboxes.erase(it);
  }
  inbox->Close();
  std::function<void(EndpointId)> listener;
  {
    std::lock_guard<std::mutex> lock(listener_mu_);
    listener = disconnect_listener_;
  }
  if (listener) listener(id);
}

void Network::SetDisconnectListener(
    std::function<void(EndpointId)> listener) {
  std::lock_guard<std::mutex> lock(listener_mu_);
  disconnect_listener_ = std::move(listener);
}

bool Network::Connected(EndpointId id) const {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.inboxes.contains(id);
}

Status Network::Send(EndpointId from, EndpointId to, Blob payload,
                     Blob attachment) {
  std::shared_ptr<Inbox> inbox;
  {
    Shard& shard = ShardFor(to);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.inboxes.find(to);
    if (it == shard.inboxes.end())
      return NotFoundError("endpoint gone: " + std::to_string(to));
    inbox = it->second;
  }
  // The push (which may block on a bounded inbox) happens lock-free with
  // respect to the registry, so one slow receiver never stalls the fabric.
  const std::uint64_t frame_bytes = payload.size() + attachment.size();
  if (!inbox->Send(Frame{from, std::move(payload), std::move(attachment)}))
    return UnavailableError("inbox closed: " + std::to_string(to));
  frames_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(frame_bytes, std::memory_order_relaxed);
  return Status::Ok();
}

}  // namespace vinelet::net
