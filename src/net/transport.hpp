// Pluggable message transport.
//
// Everything above the net layer (manager, workers, libraries, the DAG
// engine) talks to peers through this interface: register an endpoint to
// obtain an inbox of decoded Frames, and Send serialized bytes (plus an
// optional bulk attachment) to another endpoint.  Two backends implement
// it:
//
//  * net::Network — the in-process message bus (sharded endpoint registry,
//    lock-free delivery); every "cluster" lives in one address space.
//    Development, unit tests, and single-machine benches use it.
//  * net::TcpTransport — real sockets: an epoll event loop with
//    length-prefixed framing, write coalescing, scatter/gather (writev)
//    sends of frame attachments, and per-connection backpressure.  The
//    vinelet-managerd / vinelet-workerd daemons deploy one process per
//    node on top of it.
//
// The contract both backends honour:
//  * Send is asynchronous and ordered per (from, to) pair.  kNotFound means
//    the destination is not reachable *now*; kUnavailable means its inbox
//    closed.  Both are expected during churn and handled by callers' fault
//    paths.  A delivered-but-lost message (crash before processing) is
//    indistinguishable from a drop — callers must already tolerate silence.
//  * The disconnect listener fires (from an arbitrary transport thread)
//    when an endpoint departs, gracefully or not — the analog of observing
//    a TCP reset.
//  * An installed FaultInjector is consulted on every send, so chaos
//    schedules drive both backends identically: drops and partitions look
//    like Status::Ok() to the sender (a partition is silence, not an
//    error).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/channel.hpp"
#include "common/status.hpp"

namespace vinelet::net {

class FaultInjector;

using EndpointId = std::uint64_t;
constexpr EndpointId kManagerEndpoint = 0;

/// One delivered message: who sent it, the serialized message bytes, and an
/// optional bulk attachment.  The attachment carries large content (file and
/// chunk payloads) as a borrowed refcounted Blob so relays forward it
/// without copying; it is empty for ordinary control messages.
struct Frame {
  EndpointId sender = 0;
  Blob payload;
  Blob attachment;
};

using Inbox = Channel<Frame>;

/// One message of a coalesced SendMany batch.
struct Parcel {
  Blob payload;
  Blob attachment;
};

/// Live counters for one transport connection (TCP backend; the in-process
/// bus has no connections).  Shipped inside ClusterStatus so vinelet-status
/// can show per-link health: a growing send queue is backpressure, a
/// non-zero stall count means senders blocked on the per-connection cap.
struct ConnectionStats {
  EndpointId peer = 0;         ///< Primary endpoint behind the connection.
  std::string remote_addr;     ///< "host:port" of the peer socket.
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t send_queue_bytes = 0;     ///< Bytes waiting for the socket.
  std::uint64_t peak_queue_bytes = 0;     ///< High-water mark of the above.
  std::uint64_t backpressure_stalls = 0;  ///< Sends that blocked on the cap.
};

/// Abstract transport.  Thread-safe; see the file comment for the contract.
/// Common cross-backend state (delivery counters, disconnect listener,
/// fault injector) lives here so backends behave identically.
class Transport {
 public:
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Creates an endpoint hosted by this process and returns its inbox.
  /// Fails if the id is taken locally.  `capacity` bounds the inbox queue
  /// (0 = unbounded); a bounded inbox makes delivery block when full, which
  /// tests use to verify that one stalled endpoint cannot wedge the fabric.
  virtual Result<std::shared_ptr<Inbox>> Register(EndpointId id,
                                                  std::size_t capacity = 0) = 0;

  /// Removes a local endpoint; its inbox is closed so readers drain and
  /// exit, and remote peers observe the departure (disconnect listener).
  virtual void Unregister(EndpointId id) = 0;

  /// True when `id` is currently reachable (local, or via a live route).
  virtual bool Connected(EndpointId id) const = 0;

  /// Delivers `payload` (plus an optional bulk `attachment`) to `to`.
  /// kNotFound if the endpoint is unreachable, kUnavailable if its inbox is
  /// closed — both expected during worker churn.
  virtual Status Send(EndpointId from, EndpointId to, Blob payload,
                      Blob attachment = Blob()) = 0;

  /// Delivers a run of messages to one endpoint, resolving the route once
  /// for the whole batch.  Fault-injection semantics are identical to N
  /// separate Sends.  Stops at the first delivery failure and returns it.
  virtual Status SendMany(EndpointId from, EndpointId to,
                          std::vector<Parcel> parcels);

  /// Per-connection counters; empty for backends without connections.
  virtual std::vector<ConnectionStats> ConnectionsSnapshot() const {
    return {};
  }

  /// Registers a callback invoked (from a transport thread) whenever an
  /// endpoint disappears.  Pass nullptr to clear.  The callee must be
  /// thread-safe and must not call back into the transport.
  void SetDisconnectListener(std::function<void(EndpointId)> listener);

  /// Installs (or clears, with nullptr) the fault injector consulted on
  /// every Send.  Dropped/blocked messages report Status::Ok() to the
  /// sender, so manager probe and retry paths get exercised exactly as
  /// they would be by a real lossy network.
  void SetFaultInjector(std::shared_ptr<FaultInjector> injector);
  std::shared_ptr<FaultInjector> fault_injector() const;

  /// Total frames delivered into local inboxes (tests + accounting).
  std::uint64_t frames_delivered() const {
    return frames_.load(std::memory_order_relaxed);
  }
  /// Total payload + attachment bytes delivered into local inboxes.
  std::uint64_t bytes_delivered() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 protected:
  Transport() = default;

  /// Backends call this after a successful inbox push.
  void CountDelivery(std::size_t frame_bytes) {
    frames_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(frame_bytes, std::memory_order_relaxed);
  }

  /// Fires the disconnect listener (if any) for a departed endpoint.
  void NotifyDisconnect(EndpointId id);

 private:
  mutable std::mutex listener_mu_;
  std::function<void(EndpointId)> disconnect_listener_;

  mutable std::mutex fault_mu_;
  std::shared_ptr<FaultInjector> fault_;

  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace vinelet::net
