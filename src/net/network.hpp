// In-process message transport for the real runtime.
//
// The manager, every worker, and every library run as threads; the "network"
// between them is a registry of endpoint inboxes.  All traffic is serialized
// to bytes before it crosses an inbox — nothing structured is shared between
// threads — so the runtime exercises the same encode/transfer/decode path a
// real deployment would, and the protocol layer above can be tested against
// corrupt or truncated frames.
//
// Endpoint 0 is reserved for the manager; workers get ids from 1.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/channel.hpp"
#include "common/status.hpp"

namespace vinelet::net {

using EndpointId = std::uint64_t;
constexpr EndpointId kManagerEndpoint = 0;

/// One delivered message: who sent it and the serialized payload.
struct Frame {
  EndpointId sender = 0;
  Blob payload;
};

using Inbox = Channel<Frame>;

/// Registry of live endpoints.  Threads hold a shared_ptr to the Network;
/// inboxes are shared_ptrs so a frame in flight to a departing endpoint
/// never dangles.
class Network {
 public:
  /// Creates an endpoint and returns its inbox.  Fails if the id is taken.
  Result<std::shared_ptr<Inbox>> Register(EndpointId id);

  /// Removes an endpoint; its inbox is closed so readers drain and exit.
  /// Fires the disconnect listener (the analog of a peer observing the TCP
  /// connection reset), so the manager learns of abrupt departures even
  /// when no Goodbye was sent.
  void Unregister(EndpointId id);

  /// Registers a callback invoked (from the unregistering thread) whenever
  /// an endpoint disappears.  Pass nullptr to clear.  The callee must be
  /// thread-safe and must not call back into the Network.
  void SetDisconnectListener(std::function<void(EndpointId)> listener);

  bool Connected(EndpointId id) const;

  /// Delivers `payload` to `to`.  kNotFound if the endpoint is gone,
  /// kUnavailable if its inbox is closed — both are expected during
  /// worker churn and handled by the caller's fault path.
  Status Send(EndpointId from, EndpointId to, Blob payload);

  /// Total frames delivered (for tests and overhead accounting).
  std::uint64_t frames_delivered() const;
  /// Total payload bytes delivered.
  std::uint64_t bytes_delivered() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<EndpointId, std::shared_ptr<Inbox>> inboxes_;
  std::function<void(EndpointId)> disconnect_listener_;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace vinelet::net
