// In-process message transport for the real runtime.
//
// The manager, every worker, and every library run as threads; the "network"
// between them is a registry of endpoint inboxes.  All traffic is serialized
// to bytes before it crosses an inbox — nothing structured is shared between
// threads — so the runtime exercises the same encode/transfer/decode path a
// real deployment would, and the protocol layer above can be tested against
// corrupt or truncated frames.
//
// The endpoint registry is sharded (per-shard mutexes) and the delivery
// counters are atomics, so concurrent chunk relays between disjoint worker
// pairs never serialize on a global lock, and a slow or full inbox cannot
// stall sends to unrelated endpoints (the frame is pushed after all locks
// are released).
//
// Endpoint 0 is reserved for the manager; workers get ids from 1.
//
// This is the in-process backend of net::Transport; net::TcpTransport is
// the real-socket one (see transport.hpp for the shared contract).
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"

namespace vinelet::net {

/// Registry of live endpoints.  Threads hold a shared_ptr to the Network;
/// inboxes are shared_ptrs so a frame in flight to a departing endpoint
/// never dangles.
class Network final : public Transport {
 public:
  ~Network() override;

  /// Creates an endpoint and returns its inbox.  Fails if the id is taken.
  Result<std::shared_ptr<Inbox>> Register(EndpointId id,
                                          std::size_t capacity = 0) override;

  /// Removes an endpoint; its inbox is closed so readers drain and exit.
  /// Fires the disconnect listener (the analog of a peer observing the TCP
  /// connection reset), so the manager learns of abrupt departures even
  /// when no Goodbye was sent.
  void Unregister(EndpointId id) override;

  bool Connected(EndpointId id) const override;

  /// Delivers `payload` (plus an optional bulk `attachment`) to `to`.
  /// kNotFound if the endpoint is gone, kUnavailable if its inbox is closed
  /// — both are expected during worker churn and handled by the caller's
  /// fault path.  The inbox push happens outside every registry lock.
  Status Send(EndpointId from, EndpointId to, Blob payload,
              Blob attachment = Blob()) override;

  /// Delivers a run of messages to one endpoint, resolving the inbox and
  /// taking the registry shard lock once for the whole batch instead of per
  /// frame — the send-path coalescing for chunk streams and batched
  /// dispatch.  Fault-injection semantics are identical to N separate
  /// Sends (each parcel gets its own drop/corrupt/delay decision).  Stops
  /// at the first delivery failure and returns it.
  Status SendMany(EndpointId from, EndpointId to,
                  std::vector<Parcel> parcels) override;

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<EndpointId, std::shared_ptr<Inbox>> inboxes;
  };
  Shard& ShardFor(EndpointId id) const { return shards_[id % kShards]; }

  // A frame parked by an injected delay, due for delivery at `due`.
  // Holding the inbox shared_ptr keeps delivery safe across Unregister;
  // a closed inbox simply rejects the late push.
  struct DelayedFrame {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq = 0;  // FIFO tie-break among equal deadlines
    std::shared_ptr<Inbox> inbox;
    Frame frame;
    struct Later {
      bool operator()(const DelayedFrame& a, const DelayedFrame& b) const {
        return a.due != b.due ? a.due > b.due : a.seq > b.seq;
      }
    };
  };

  Status Deliver(const std::shared_ptr<Inbox>& inbox, Frame frame);
  Status SendResolved(const std::shared_ptr<Inbox>& inbox,
                      const std::shared_ptr<FaultInjector>& fault,
                      EndpointId from, EndpointId to, Blob payload,
                      Blob attachment);
  void EnqueueDelayed(std::shared_ptr<Inbox> inbox, Frame frame,
                      double delay_s);
  void DelayPump();

  mutable std::array<Shard, kShards> shards_;

  std::mutex delay_mu_;
  std::condition_variable delay_cv_;
  std::priority_queue<DelayedFrame, std::vector<DelayedFrame>,
                      DelayedFrame::Later>
      delayed_;
  std::uint64_t delay_seq_ = 0;
  bool delay_stop_ = false;
  std::thread delay_thread_;  // started lazily on the first delayed frame
};

}  // namespace vinelet::net
