// In-process message transport for the real runtime.
//
// The manager, every worker, and every library run as threads; the "network"
// between them is a registry of endpoint inboxes.  All traffic is serialized
// to bytes before it crosses an inbox — nothing structured is shared between
// threads — so the runtime exercises the same encode/transfer/decode path a
// real deployment would, and the protocol layer above can be tested against
// corrupt or truncated frames.
//
// The endpoint registry is sharded (per-shard mutexes) and the delivery
// counters are atomics, so concurrent chunk relays between disjoint worker
// pairs never serialize on a global lock, and a slow or full inbox cannot
// stall sends to unrelated endpoints (the frame is pushed after all locks
// are released).
//
// Endpoint 0 is reserved for the manager; workers get ids from 1.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/channel.hpp"
#include "common/status.hpp"

namespace vinelet::net {

class FaultInjector;

using EndpointId = std::uint64_t;
constexpr EndpointId kManagerEndpoint = 0;

/// One delivered message: who sent it, the serialized message bytes, and an
/// optional bulk attachment.  The attachment carries large content (file and
/// chunk payloads) as a borrowed refcounted Blob so relays forward it
/// without copying; it is empty for ordinary control messages.
struct Frame {
  EndpointId sender = 0;
  Blob payload;
  Blob attachment;
};

using Inbox = Channel<Frame>;

/// Registry of live endpoints.  Threads hold a shared_ptr to the Network;
/// inboxes are shared_ptrs so a frame in flight to a departing endpoint
/// never dangles.
class Network {
 public:
  ~Network();

  /// Creates an endpoint and returns its inbox.  Fails if the id is taken.
  /// `capacity` bounds the inbox queue (0 = unbounded, the default); a
  /// bounded inbox makes Send block when full, which tests use to verify
  /// that one stalled endpoint cannot wedge the rest of the fabric.
  Result<std::shared_ptr<Inbox>> Register(EndpointId id,
                                          std::size_t capacity = 0);

  /// Removes an endpoint; its inbox is closed so readers drain and exit.
  /// Fires the disconnect listener (the analog of a peer observing the TCP
  /// connection reset), so the manager learns of abrupt departures even
  /// when no Goodbye was sent.
  void Unregister(EndpointId id);

  /// Registers a callback invoked (from the unregistering thread) whenever
  /// an endpoint disappears.  Pass nullptr to clear.  The callee must be
  /// thread-safe and must not call back into the Network.
  void SetDisconnectListener(std::function<void(EndpointId)> listener);

  bool Connected(EndpointId id) const;

  /// Delivers `payload` (plus an optional bulk `attachment`) to `to`.
  /// kNotFound if the endpoint is gone, kUnavailable if its inbox is closed
  /// — both are expected during worker churn and handled by the caller's
  /// fault path.  The inbox push happens outside every registry lock.
  Status Send(EndpointId from, EndpointId to, Blob payload,
              Blob attachment = Blob());

  /// One message of a coalesced SendMany batch.
  struct Parcel {
    Blob payload;
    Blob attachment;
  };

  /// Delivers a run of messages to one endpoint, resolving the inbox and
  /// taking the registry shard lock once for the whole batch instead of per
  /// frame — the send-path coalescing for chunk streams and batched
  /// dispatch.  Fault-injection semantics are identical to N separate
  /// Sends (each parcel gets its own drop/corrupt/delay decision).  Stops
  /// at the first delivery failure and returns it.
  Status SendMany(EndpointId from, EndpointId to, std::vector<Parcel> parcels);

  /// Installs (or clears, with nullptr) the fault injector consulted on
  /// every Send.  Dropped/blocked messages report Status::Ok() to the
  /// sender — a partition is silence, not an error — so manager probe and
  /// retry paths get exercised exactly as they would be by a real network.
  void SetFaultInjector(std::shared_ptr<FaultInjector> injector);
  std::shared_ptr<FaultInjector> fault_injector() const;

  /// Total frames delivered (for tests and overhead accounting).
  std::uint64_t frames_delivered() const {
    return frames_.load(std::memory_order_relaxed);
  }
  /// Total payload + attachment bytes delivered.
  std::uint64_t bytes_delivered() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<EndpointId, std::shared_ptr<Inbox>> inboxes;
  };
  Shard& ShardFor(EndpointId id) const { return shards_[id % kShards]; }

  // A frame parked by an injected delay, due for delivery at `due`.
  // Holding the inbox shared_ptr keeps delivery safe across Unregister;
  // a closed inbox simply rejects the late push.
  struct DelayedFrame {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq = 0;  // FIFO tie-break among equal deadlines
    std::shared_ptr<Inbox> inbox;
    Frame frame;
    struct Later {
      bool operator()(const DelayedFrame& a, const DelayedFrame& b) const {
        return a.due != b.due ? a.due > b.due : a.seq > b.seq;
      }
    };
  };

  Status Deliver(const std::shared_ptr<Inbox>& inbox, Frame frame);
  Status SendResolved(const std::shared_ptr<Inbox>& inbox,
                      const std::shared_ptr<FaultInjector>& fault,
                      EndpointId from, EndpointId to, Blob payload,
                      Blob attachment);
  void EnqueueDelayed(std::shared_ptr<Inbox> inbox, Frame frame,
                      double delay_s);
  void DelayPump();

  mutable std::array<Shard, kShards> shards_;
  mutable std::mutex listener_mu_;
  std::function<void(EndpointId)> disconnect_listener_;
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> bytes_{0};

  mutable std::mutex fault_mu_;
  std::shared_ptr<FaultInjector> fault_;

  std::mutex delay_mu_;
  std::condition_variable delay_cv_;
  std::priority_queue<DelayedFrame, std::vector<DelayedFrame>,
                      DelayedFrame::Later>
      delayed_;
  std::uint64_t delay_seq_ = 0;
  bool delay_stop_ = false;
  std::thread delay_thread_;  // started lazily on the first delayed frame
};

}  // namespace vinelet::net
