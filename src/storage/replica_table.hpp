// Manager-side replica tracking and transfer-source selection.
//
// The manager maintains "a table of files" (paper §2.2.2) mapping each
// content id to the set of workers that hold a verified replica.  When a
// worker needs a file, the table picks a source: a peer that holds the blob
// and has spare outbound capacity (each worker "is capped to N transfers of
// input files at any given time to avoid a sink in the spanning tree",
// §3.3), falling back to the manager.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "hash/content_id.hpp"

namespace vinelet::storage {

using WorkerId = std::uint64_t;

/// Where a transfer should be served from.
struct SourceChoice {
  bool from_manager = true;
  WorkerId peer = 0;  // valid when !from_manager
};

class ReplicaTable {
 public:
  /// `worker_outbound_cap` is the per-worker concurrent-transfer cap N;
  /// `manager_outbound_cap` bounds the manager's concurrent sends
  /// (0 = unbounded).
  explicit ReplicaTable(unsigned worker_outbound_cap = 3,
                        unsigned manager_outbound_cap = 0)
      : worker_cap_(worker_outbound_cap), manager_cap_(manager_outbound_cap) {}

  /// Records that `worker` holds a verified replica of `id`.
  void AddReplica(const hash::ContentId& id, WorkerId worker);
  void RemoveReplica(const hash::ContentId& id, WorkerId worker);

  /// Forgets every replica on a departed worker.
  void RemoveWorker(WorkerId worker);

  bool HasReplica(const hash::ContentId& id, WorkerId worker) const;
  std::vector<WorkerId> Holders(const hash::ContentId& id) const;
  std::size_t ReplicaCount(const hash::ContentId& id) const;

  /// Chooses a source for `requester` to fetch `id` from.
  ///
  /// Preference order: the peer holding the blob with the fewest in-flight
  /// outbound transfers (if peer transfer is allowed and some peer is under
  /// cap), then the manager (if under its cap).  kUnavailable when all
  /// possible sources are saturated — the caller queues and retries.
  Result<SourceChoice> PickSource(const hash::ContentId& id,
                                  WorkerId requester,
                                  bool allow_peer_transfer) const;

  /// In-flight transfer accounting (manager is the bookkeeper for both its
  /// own link and workers' outbound links).
  void BeginTransfer(const SourceChoice& source);
  void EndTransfer(const SourceChoice& source);

  unsigned OutboundInFlight(WorkerId worker) const;
  unsigned ManagerOutboundInFlight() const noexcept { return manager_inflight_; }

 private:
  unsigned worker_cap_;
  unsigned manager_cap_;
  unsigned manager_inflight_ = 0;
  std::unordered_map<hash::ContentId, std::set<WorkerId>> replicas_;
  std::unordered_map<WorkerId, unsigned> outbound_;
};

}  // namespace vinelet::storage
