#include "storage/replica_table.hpp"

namespace vinelet::storage {

void ReplicaTable::AddReplica(const hash::ContentId& id, WorkerId worker) {
  replicas_[id].insert(worker);
}

void ReplicaTable::RemoveReplica(const hash::ContentId& id, WorkerId worker) {
  auto it = replicas_.find(id);
  if (it == replicas_.end()) return;
  it->second.erase(worker);
  if (it->second.empty()) replicas_.erase(it);
}

void ReplicaTable::RemoveWorker(WorkerId worker) {
  for (auto it = replicas_.begin(); it != replicas_.end();) {
    it->second.erase(worker);
    if (it->second.empty()) {
      it = replicas_.erase(it);
    } else {
      ++it;
    }
  }
  outbound_.erase(worker);
}

bool ReplicaTable::HasReplica(const hash::ContentId& id,
                              WorkerId worker) const {
  auto it = replicas_.find(id);
  return it != replicas_.end() && it->second.contains(worker);
}

std::vector<WorkerId> ReplicaTable::Holders(const hash::ContentId& id) const {
  auto it = replicas_.find(id);
  if (it == replicas_.end()) return {};
  return std::vector<WorkerId>(it->second.begin(), it->second.end());
}

std::size_t ReplicaTable::ReplicaCount(const hash::ContentId& id) const {
  auto it = replicas_.find(id);
  return it == replicas_.end() ? 0 : it->second.size();
}

Result<SourceChoice> ReplicaTable::PickSource(const hash::ContentId& id,
                                              WorkerId requester,
                                              bool allow_peer_transfer) const {
  if (allow_peer_transfer) {
    auto it = replicas_.find(id);
    if (it != replicas_.end()) {
      std::optional<WorkerId> best;
      unsigned best_load = worker_cap_;
      for (WorkerId holder : it->second) {
        if (holder == requester) continue;
        auto load_it = outbound_.find(holder);
        const unsigned load = load_it == outbound_.end() ? 0 : load_it->second;
        if (load < best_load) {
          best_load = load;
          best = holder;
        }
      }
      if (best.has_value()) return SourceChoice{false, *best};
    }
  }
  if (manager_cap_ != 0 && manager_inflight_ >= manager_cap_)
    return UnavailableError("all transfer sources saturated for " +
                            id.ShortHex());
  return SourceChoice{true, 0};
}

void ReplicaTable::BeginTransfer(const SourceChoice& source) {
  if (source.from_manager) {
    ++manager_inflight_;
  } else {
    ++outbound_[source.peer];
  }
}

void ReplicaTable::EndTransfer(const SourceChoice& source) {
  if (source.from_manager) {
    if (manager_inflight_ > 0) --manager_inflight_;
  } else {
    auto it = outbound_.find(source.peer);
    if (it != outbound_.end() && it->second > 0) --it->second;
  }
}

unsigned ReplicaTable::OutboundInFlight(WorkerId worker) const {
  auto it = outbound_.find(worker);
  return it == outbound_.end() ? 0 : it->second;
}

}  // namespace vinelet::storage
