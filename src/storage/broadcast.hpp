// Broadcast planning: the three distribution topologies of paper Figure 3.
//
//  (a) kSequential    — workers cannot talk to each other; the manager sends
//                       the context to each worker in turn.
//  (b) kSpanningTree  — full worker-to-worker connectivity; receivers become
//                       senders, each capped at N concurrent outbound
//                       transfers, so replicas grow geometrically.
//  (c) kClustered     — limited connectivity between worker sets (e.g. an
//                       on-prem cluster plus a cloud burst); the manager
//                       seeds each cluster once over the slow inter-cluster
//                       link, then each cluster broadcasts internally as a
//                       tree.
//
// The planner is pure and deterministic: it emits the full transfer schedule
// (who sends to whom, in which round) and an analytic makespan, which the
// Fig-3 ablation bench sweeps against worker count and fan-out cap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace vinelet::storage {

enum class BroadcastMode : std::uint8_t {
  kSequential = 0,
  kSpanningTree,
  kClustered,
};

std::string_view BroadcastModeName(BroadcastMode mode) noexcept;

/// One scheduled transfer.  source == kManagerSource means the manager.
struct TransferStep {
  static constexpr std::int64_t kManagerSource = -1;
  std::int64_t source = kManagerSource;
  std::uint64_t dest = 0;
  unsigned round = 0;  // transfers in the same round overlap in time
};

struct BroadcastPlan {
  BroadcastMode mode = BroadcastMode::kSequential;
  std::vector<TransferStep> steps;
  unsigned rounds = 0;
};

struct BroadcastParams {
  BroadcastMode mode = BroadcastMode::kSpanningTree;
  std::size_t num_workers = 0;

  /// Per-worker concurrent outbound cap N (§3.3); also applied to the
  /// manager's concurrent sends in tree/clustered modes.
  unsigned fanout_cap = 3;

  /// kClustered only: workers are split round-robin into this many clusters.
  std::size_t num_clusters = 2;
};

/// Computes the transfer schedule for broadcasting one blob to all workers.
/// Workers are identified 0..num_workers-1.  Fails on zero fan-out.
Result<BroadcastPlan> PlanBroadcast(const BroadcastParams& params);

/// Analytic makespan of a plan when every transfer of this blob takes
/// `transfer_seconds` on an intra-cluster link and
/// `transfer_seconds * inter_cluster_slowdown` when the source and dest are
/// in different clusters (or manager → worker in clustered mode).
double EstimateMakespan(const BroadcastPlan& plan,
                        const BroadcastParams& params, double transfer_seconds,
                        double inter_cluster_slowdown = 4.0);

// --- Chunk-level pipelined broadcast (cut-through relay) ---
//
// The whole-blob plans above are store-and-forward: a worker cannot serve
// its children until its own copy is complete, so makespan grows as
// depth × blob_time.  The pipelined plan splits the blob into fixed-size
// chunks and every receiver forwards chunk k to its tree children as soon
// as chunk k arrives, so makespan approaches blob_time + depth × chunk_time.

/// Default chunk size (~4 MB) used by both backends.
constexpr std::uint64_t kDefaultChunkBytes = 4ull << 20;

/// How the blob is cut into chunks for a pipelined broadcast.
struct ChunkParams {
  std::uint64_t blob_bytes = 0;
  std::uint64_t chunk_bytes = kDefaultChunkBytes;
};

/// Number of chunks for a blob (at least 1; the last chunk may be short).
std::size_t ChunkCount(const ChunkParams& chunks) noexcept;

/// Explicit relay tree for a pipelined broadcast: the same breadth-first
/// fan-out-capped shape as kSpanningTree, but expressed as parent/children
/// links because every edge carries all chunks (there are no rounds).
struct PipelinePlan {
  /// Per worker: its chunk source (kManagerSource for the manager's direct
  /// children).
  std::vector<std::int64_t> parent;
  /// Per worker: the workers it relays chunks to (size ≤ fanout_cap).
  std::vector<std::vector<std::uint64_t>> children;
  /// The manager's direct children (size ≤ fanout_cap).
  std::vector<std::uint64_t> roots;
  /// Hops from the manager to the deepest worker (0 when no workers).
  unsigned depth = 0;
  std::size_t num_chunks = 1;
};

/// Builds the relay tree + chunking for a pipelined broadcast.  Only the
/// fan-out cap and worker count of `params` are consulted (pipelining is a
/// spanning-tree refinement; sequential/clustered modes are not chunked).
Result<PipelinePlan> PlanPipelinedBroadcast(const BroadcastParams& params,
                                            const ChunkParams& chunks);

/// Analytic makespan of a pipelined plan.  Cut-through model: a node begins
/// relaying chunk k to all of its children the moment chunk k arrives;
/// children are served concurrently (the fan-out cap bounds tree arity, the
/// same slot semantics as EstimateMakespan).  The manager's outbound link
/// (`manager_link_Bps`) is shared fairly by its direct children; each
/// worker-to-worker edge runs at the full `worker_link_Bps`.
double EstimatePipelinedMakespan(const PipelinePlan& plan,
                                 const ChunkParams& chunks,
                                 double worker_link_Bps,
                                 double manager_link_Bps);

}  // namespace vinelet::storage
