// Broadcast planning: the three distribution topologies of paper Figure 3.
//
//  (a) kSequential    — workers cannot talk to each other; the manager sends
//                       the context to each worker in turn.
//  (b) kSpanningTree  — full worker-to-worker connectivity; receivers become
//                       senders, each capped at N concurrent outbound
//                       transfers, so replicas grow geometrically.
//  (c) kClustered     — limited connectivity between worker sets (e.g. an
//                       on-prem cluster plus a cloud burst); the manager
//                       seeds each cluster once over the slow inter-cluster
//                       link, then each cluster broadcasts internally as a
//                       tree.
//
// The planner is pure and deterministic: it emits the full transfer schedule
// (who sends to whom, in which round) and an analytic makespan, which the
// Fig-3 ablation bench sweeps against worker count and fan-out cap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace vinelet::storage {

enum class BroadcastMode : std::uint8_t {
  kSequential = 0,
  kSpanningTree,
  kClustered,
};

std::string_view BroadcastModeName(BroadcastMode mode) noexcept;

/// One scheduled transfer.  source == kManagerSource means the manager.
struct TransferStep {
  static constexpr std::int64_t kManagerSource = -1;
  std::int64_t source = kManagerSource;
  std::uint64_t dest = 0;
  unsigned round = 0;  // transfers in the same round overlap in time
};

struct BroadcastPlan {
  BroadcastMode mode = BroadcastMode::kSequential;
  std::vector<TransferStep> steps;
  unsigned rounds = 0;
};

struct BroadcastParams {
  BroadcastMode mode = BroadcastMode::kSpanningTree;
  std::size_t num_workers = 0;

  /// Per-worker concurrent outbound cap N (§3.3); also applied to the
  /// manager's concurrent sends in tree/clustered modes.
  unsigned fanout_cap = 3;

  /// kClustered only: workers are split round-robin into this many clusters.
  std::size_t num_clusters = 2;
};

/// Computes the transfer schedule for broadcasting one blob to all workers.
/// Workers are identified 0..num_workers-1.  Fails on zero fan-out.
Result<BroadcastPlan> PlanBroadcast(const BroadcastParams& params);

/// Analytic makespan of a plan when every transfer of this blob takes
/// `transfer_seconds` on an intra-cluster link and
/// `transfer_seconds * inter_cluster_slowdown` when the source and dest are
/// in different clusters (or manager → worker in clustered mode).
double EstimateMakespan(const BroadcastPlan& plan,
                        const BroadcastParams& params, double transfer_seconds,
                        double inter_cluster_slowdown = 4.0);

}  // namespace vinelet::storage
