// ContentStore: a worker's local content-addressed blob cache.
//
// Thread-safe wrapper of CacheIndex that also owns the payloads.  This is
// the "local disk" of a real-runtime worker: environment tarballs, input
// data, and serialized functions land here once and are shared by every
// invocation on the node (data-to-worker binding, paper §2.2.1).
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "hash/content_id.hpp"
#include "storage/cache_index.hpp"
#include "telemetry/metrics.hpp"

namespace vinelet::storage {

class ContentStore {
 public:
  explicit ContentStore(std::uint64_t capacity_bytes = 0)
      : index_(capacity_bytes) {}

  /// Stores a blob under its content id (verified: id must equal the hash
  /// of the payload, catching corrupted transfers).  Idempotent for
  /// identical content.
  Status Put(const hash::ContentId& id, Blob blob);

  /// Stores without verification — used for locally-generated blobs whose
  /// id was just computed by the caller.
  Status PutTrusted(const hash::ContentId& id, Blob blob);

  /// Fetches a blob, refreshing recency.  kNotFound on miss.
  Result<Blob> Get(const hash::ContentId& id);

  bool Contains(const hash::ContentId& id) const;

  Status Pin(const hash::ContentId& id);
  Status Unpin(const hash::ContentId& id);
  Status Remove(const hash::ContentId& id);

  std::uint64_t used_bytes() const;
  std::uint64_t capacity_bytes() const;
  CacheStats stats() const;

  /// One cached entry, for introspection listings.
  struct Entry {
    hash::ContentId id;
    std::uint64_t bytes = 0;
  };

  /// Snapshot of the cache contents (unordered), without touching recency.
  std::vector<Entry> List() const;

  /// Mirrors cache activity into `registry` as `<prefix>.hits`,
  /// `<prefix>.misses`, `<prefix>.evictions`, `<prefix>.inserted_bytes` and
  /// `<prefix>.evicted_bytes`.  Counters from several stores bound with the
  /// same prefix aggregate (e.g. all workers under "worker.cache").
  void BindMetrics(telemetry::MetricsRegistry* registry,
                   const std::string& prefix);

 private:
  Status PutLocked(const hash::ContentId& id, Blob blob);

  mutable std::mutex mu_;
  CacheIndex index_;
  std::unordered_map<hash::ContentId, Blob> payloads_;

  // Optional registry mirror (null until BindMetrics).
  telemetry::Counter* hits_ = nullptr;
  telemetry::Counter* misses_ = nullptr;
  telemetry::Counter* evictions_ = nullptr;
  telemetry::Counter* inserted_bytes_ = nullptr;
  telemetry::Counter* evicted_bytes_ = nullptr;
};

}  // namespace vinelet::storage
