#include "storage/cache_index.hpp"

namespace vinelet::storage {

Result<std::vector<hash::ContentId>> CacheIndex::Insert(
    const hash::ContentId& id, std::uint64_t size) {
  if (entries_.contains(id))
    return AlreadyExistsError("cache entry exists: " + id.ShortHex());
  if (capacity_ != 0 && size > capacity_)
    return ResourceExhaustedError("entry larger than cache: " +
                                  id.ShortHex());

  std::vector<hash::ContentId> evicted;
  if (capacity_ != 0 && used_ + size > capacity_) {
    auto freed = EvictFor(used_ + size - capacity_);
    if (!freed.ok()) return freed.status();
    evicted = std::move(*freed);
  }

  lru_.push_front(id);
  entries_[id] = Entry{size, 0, lru_.begin()};
  used_ += size;
  stats_.inserted_bytes += size;
  return evicted;
}

Result<std::vector<hash::ContentId>> CacheIndex::EvictFor(
    std::uint64_t needed) {
  // First pass: verify enough unpinned bytes exist, so failure is atomic.
  std::uint64_t reclaimable = 0;
  for (const auto& [_, entry] : entries_) {
    if (entry.pins == 0) reclaimable += entry.size;
  }
  if (reclaimable < needed)
    return ResourceExhaustedError("cannot evict enough unpinned bytes");

  std::vector<hash::ContentId> evicted;
  std::uint64_t freed = 0;
  for (auto it = lru_.rbegin(); it != lru_.rend() && freed < needed;) {
    const hash::ContentId victim = *it;
    ++it;  // advance before potential erase invalidates the position
    auto& entry = entries_.at(victim);
    if (entry.pins != 0) continue;
    freed += entry.size;
    used_ -= entry.size;
    stats_.evicted_bytes += entry.size;
    ++stats_.evictions;
    lru_.erase(entry.lru_pos);
    entries_.erase(victim);
    evicted.push_back(victim);
    // lru_ mutation invalidated `it` (reverse_iterator wraps the erased
    // node's successor); restart the scan from the tail.  Eviction batches
    // are small, so the re-scan cost is negligible.
    it = lru_.rbegin();
  }
  return evicted;
}

bool CacheIndex::Touch(const hash::ContentId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  lru_.erase(it->second.lru_pos);
  lru_.push_front(id);
  it->second.lru_pos = lru_.begin();
  return true;
}

bool CacheIndex::Contains(const hash::ContentId& id) const {
  return entries_.contains(id);
}

std::optional<std::uint64_t> CacheIndex::SizeOf(
    const hash::ContentId& id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return it->second.size;
}

Status CacheIndex::Pin(const hash::ContentId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end())
    return NotFoundError("pin: entry absent: " + id.ShortHex());
  ++it->second.pins;
  return Status::Ok();
}

Status CacheIndex::Unpin(const hash::ContentId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end())
    return NotFoundError("unpin: entry absent: " + id.ShortHex());
  if (it->second.pins == 0)
    return FailedPreconditionError("unpin: not pinned: " + id.ShortHex());
  --it->second.pins;
  return Status::Ok();
}

int CacheIndex::PinCount(const hash::ContentId& id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? 0 : it->second.pins;
}

Status CacheIndex::Remove(const hash::ContentId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end())
    return NotFoundError("remove: entry absent: " + id.ShortHex());
  if (it->second.pins != 0)
    return FailedPreconditionError("remove: pinned: " + id.ShortHex());
  used_ -= it->second.size;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  return Status::Ok();
}

std::vector<hash::ContentId> CacheIndex::Ids() const {
  std::vector<hash::ContentId> out;
  out.reserve(entries_.size());
  for (const auto& [id, _] : entries_) out.push_back(id);
  return out;
}

}  // namespace vinelet::storage
