// File declarations: how data enters the data plane.
//
// A FileDecl is the manager-side description of one transferable, read-only,
// content-addressed file (paper Fig 5: vine.File('dataset.tar.gz',
// cache=True, peer_transfer=True)).  Declarations carry policy — cacheable?
// peer-transferable? unpack on arrival? — while the bytes themselves live in
// content stores keyed by the declaration's ContentId.
#pragma once

#include <cstdint>
#include <string>

#include "hash/content_id.hpp"

namespace vinelet::storage {

enum class FileKind : std::uint8_t {
  kData = 0,            // application input data
  kEnvironment,         // packed software environment (poncho tarball)
  kSerializedFunction,  // shipped function code
  kLibraryScript,       // the library daemon's own code
};

struct FileDecl {
  std::string name;  // binding name visible to invocations
  hash::ContentId id;
  std::uint64_t size = 0;
  FileKind kind = FileKind::kData;

  /// Retain in the worker's local cache after first fetch (L2+).
  bool cache = true;

  /// May be served from a peer worker's cache (enables Fig 3b trees).
  bool peer_transfer = true;

  /// Archive that must be unpacked into the worker cache on arrival;
  /// the unpacked form is what invocations consume.
  bool unpack = false;
};

}  // namespace vinelet::storage
