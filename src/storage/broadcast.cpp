#include "storage/broadcast.hpp"

#include <algorithm>
#include <deque>
#include <map>

namespace vinelet::storage {

std::string_view BroadcastModeName(BroadcastMode mode) noexcept {
  switch (mode) {
    case BroadcastMode::kSequential: return "sequential";
    case BroadcastMode::kSpanningTree: return "spanning-tree";
    case BroadcastMode::kClustered: return "clustered";
  }
  return "?";
}

namespace {

Result<BroadcastPlan> PlanSequential(const BroadcastParams& params) {
  BroadcastPlan plan;
  plan.mode = BroadcastMode::kSequential;
  plan.steps.reserve(params.num_workers);
  for (std::size_t w = 0; w < params.num_workers; ++w) {
    plan.steps.push_back({TransferStep::kManagerSource,
                          static_cast<std::uint64_t>(w),
                          static_cast<unsigned>(w)});
  }
  plan.rounds = static_cast<unsigned>(params.num_workers);
  return plan;
}

Result<BroadcastPlan> PlanSpanningTree(const BroadcastParams& params) {
  BroadcastPlan plan;
  plan.mode = BroadcastMode::kSpanningTree;
  // Holders grow geometrically: each round, every holder (manager included)
  // starts up to fanout_cap transfers to workers that lack the blob.
  std::vector<std::int64_t> holders = {TransferStep::kManagerSource};
  std::size_t next_worker = 0;
  unsigned round = 0;
  while (next_worker < params.num_workers) {
    std::vector<std::int64_t> new_holders;
    for (std::int64_t source : holders) {
      for (unsigned k = 0;
           k < params.fanout_cap && next_worker < params.num_workers; ++k) {
        plan.steps.push_back(
            {source, static_cast<std::uint64_t>(next_worker), round});
        new_holders.push_back(static_cast<std::int64_t>(next_worker));
        ++next_worker;
      }
      if (next_worker >= params.num_workers) break;
    }
    holders.insert(holders.end(), new_holders.begin(), new_holders.end());
    ++round;
  }
  plan.rounds = round;
  return plan;
}

Result<BroadcastPlan> PlanClustered(const BroadcastParams& params) {
  if (params.num_clusters == 0)
    return InvalidArgumentError("num_clusters must be positive");
  BroadcastPlan plan;
  plan.mode = BroadcastMode::kClustered;

  // Workers are assigned to clusters round-robin: cluster(w) = w % k.
  std::vector<std::vector<std::uint64_t>> clusters(params.num_clusters);
  for (std::size_t w = 0; w < params.num_workers; ++w)
    clusters[w % params.num_clusters].push_back(w);

  unsigned max_round = 0;
  unsigned seed_round = 0;
  for (const auto& members : clusters) {
    if (members.empty()) continue;
    // Manager seeds each cluster head sequentially over the slow link.
    plan.steps.push_back({TransferStep::kManagerSource, members[0],
                          seed_round});
    // Intra-cluster spanning tree rooted at the seed.
    std::vector<std::uint64_t> holders = {members[0]};
    std::size_t next = 1;
    unsigned round = seed_round + 1;
    while (next < members.size()) {
      std::vector<std::uint64_t> new_holders;
      for (std::uint64_t source : holders) {
        for (unsigned k = 0; k < params.fanout_cap && next < members.size();
             ++k) {
          plan.steps.push_back({static_cast<std::int64_t>(source),
                                members[next], round});
          new_holders.push_back(members[next]);
          ++next;
        }
        if (next >= members.size()) break;
      }
      holders.insert(holders.end(), new_holders.begin(), new_holders.end());
      ++round;
    }
    max_round = std::max(max_round, round);
    ++seed_round;  // manager moves to the next cluster
  }
  plan.rounds = std::max(max_round, seed_round);
  return plan;
}

}  // namespace

Result<BroadcastPlan> PlanBroadcast(const BroadcastParams& params) {
  if (params.fanout_cap == 0)
    return InvalidArgumentError("fanout_cap must be positive");
  switch (params.mode) {
    case BroadcastMode::kSequential:
      return PlanSequential(params);
    case BroadcastMode::kSpanningTree:
      return PlanSpanningTree(params);
    case BroadcastMode::kClustered:
      return PlanClustered(params);
  }
  return InvalidArgumentError("unknown broadcast mode");
}

std::size_t ChunkCount(const ChunkParams& chunks) noexcept {
  if (chunks.blob_bytes == 0 || chunks.chunk_bytes == 0) return 1;
  return static_cast<std::size_t>(
      (chunks.blob_bytes + chunks.chunk_bytes - 1) / chunks.chunk_bytes);
}

Result<PipelinePlan> PlanPipelinedBroadcast(const BroadcastParams& params,
                                            const ChunkParams& chunks) {
  if (params.fanout_cap == 0)
    return InvalidArgumentError("fanout_cap must be positive");
  PipelinePlan plan;
  plan.num_chunks = ChunkCount(chunks);
  plan.parent.assign(params.num_workers, TransferStep::kManagerSource);
  plan.children.assign(params.num_workers, {});
  if (params.num_workers == 0) return plan;

  // Breadth-first fan-out-capped tree, same shape as PlanSpanningTree so the
  // whole-blob and pipelined schedules are directly comparable.
  std::vector<unsigned> node_depth(params.num_workers, 0);
  std::size_t next_worker = 0;
  std::deque<std::int64_t> frontier = {TransferStep::kManagerSource};
  while (next_worker < params.num_workers) {
    const std::int64_t source = frontier.front();
    frontier.pop_front();
    for (unsigned k = 0;
         k < params.fanout_cap && next_worker < params.num_workers; ++k) {
      const std::uint64_t dest = next_worker++;
      plan.parent[dest] = source;
      if (source == TransferStep::kManagerSource) {
        plan.roots.push_back(dest);
        node_depth[dest] = 1;
      } else {
        plan.children[static_cast<std::size_t>(source)].push_back(dest);
        node_depth[dest] = node_depth[static_cast<std::size_t>(source)] + 1;
      }
      plan.depth = std::max(plan.depth, node_depth[dest]);
      frontier.push_back(static_cast<std::int64_t>(dest));
    }
  }
  return plan;
}

double EstimatePipelinedMakespan(const PipelinePlan& plan,
                                 const ChunkParams& chunks,
                                 double worker_link_Bps,
                                 double manager_link_Bps) {
  if (plan.parent.empty() || worker_link_Bps <= 0 || manager_link_Bps <= 0)
    return 0.0;
  const std::size_t num_chunks = std::max<std::size_t>(plan.num_chunks, 1);
  // Per-chunk byte counts (the last chunk may be short).
  std::vector<double> chunk_bytes(num_chunks,
                                  static_cast<double>(chunks.chunk_bytes));
  if (chunks.blob_bytes == 0 || chunks.chunk_bytes == 0) {
    chunk_bytes.assign(num_chunks, static_cast<double>(chunks.blob_bytes));
  } else {
    const std::uint64_t tail = chunks.blob_bytes % chunks.chunk_bytes;
    if (tail != 0) chunk_bytes.back() = static_cast<double>(tail);
  }

  // a(v, k): arrival time of chunk k at worker v, with the cut-through
  // recurrence  a(v, k) = max(a(parent, k), a(v, k-1)) + chunk_time(edge).
  // The manager holds every chunk at t = 0.  Its direct children share the
  // manager link fairly; worker edges run at the full worker rate.
  const double root_rate =
      manager_link_Bps / static_cast<double>(std::max<std::size_t>(
                             plan.roots.size(), 1));
  std::vector<std::vector<double>> arrivals(plan.parent.size());
  double makespan = 0.0;
  // parent[v] < v by construction (breadth-first order), so a single pass in
  // worker order sees every parent before its children.
  for (std::size_t v = 0; v < plan.parent.size(); ++v) {
    const std::int64_t p = plan.parent[v];
    const bool from_manager = p == TransferStep::kManagerSource;
    const double rate = from_manager ? root_rate : worker_link_Bps;
    const std::vector<double>* upstream =
        from_manager ? nullptr : &arrivals[static_cast<std::size_t>(p)];
    std::vector<double>& mine = arrivals[v];
    mine.resize(num_chunks);
    double prev = 0.0;
    for (std::size_t k = 0; k < num_chunks; ++k) {
      const double src_ready = upstream == nullptr ? 0.0 : (*upstream)[k];
      mine[k] = std::max(src_ready, prev) + chunk_bytes[k] / rate;
      prev = mine[k];
    }
    makespan = std::max(makespan, mine.back());
  }
  return makespan;
}

double EstimateMakespan(const BroadcastPlan& plan,
                        const BroadcastParams& params, double transfer_seconds,
                        double inter_cluster_slowdown) {
  // Greedy replay honoring data readiness and the per-source concurrency
  // cap.  Steps are already emitted in dependency order (a worker never
  // sends before the step that delivered its own copy).
  const unsigned cap =
      plan.mode == BroadcastMode::kSequential ? 1 : params.fanout_cap;

  auto cluster_of = [&](std::int64_t node) -> std::int64_t {
    if (node == TransferStep::kManagerSource || params.num_clusters == 0)
      return -1;
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(node) %
                                     params.num_clusters);
  };

  std::map<std::int64_t, double> ready;  // node -> time its copy is complete
  ready[TransferStep::kManagerSource] = 0.0;
  // Per-source ring of `cap` link slots, each recording when it frees up.
  std::map<std::int64_t, std::vector<double>> slots;

  double makespan = 0.0;
  for (const auto& step : plan.steps) {
    double duration = transfer_seconds;
    if (plan.mode == BroadcastMode::kClustered &&
        (step.source == TransferStep::kManagerSource ||
         cluster_of(step.source) !=
             cluster_of(static_cast<std::int64_t>(step.dest)))) {
      duration *= inter_cluster_slowdown;
    }
    auto& source_slots = slots[step.source];
    if (source_slots.empty()) source_slots.assign(cap, 0.0);
    auto slot = std::min_element(source_slots.begin(), source_slots.end());
    const double start = std::max(ready[step.source], *slot);
    const double finish = start + duration;
    *slot = finish;
    ready[static_cast<std::int64_t>(step.dest)] = finish;
    makespan = std::max(makespan, finish);
  }
  return makespan;
}

}  // namespace vinelet::storage
