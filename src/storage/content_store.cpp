#include "storage/content_store.hpp"

namespace vinelet::storage {

Status ContentStore::Put(const hash::ContentId& id, Blob blob) {
  if (hash::ContentId::Of(blob) != id)
    return DataLossError("content hash mismatch for " + id.ShortHex());
  std::lock_guard<std::mutex> lock(mu_);
  return PutLocked(id, std::move(blob));
}

Status ContentStore::PutTrusted(const hash::ContentId& id, Blob blob) {
  std::lock_guard<std::mutex> lock(mu_);
  return PutLocked(id, std::move(blob));
}

Status ContentStore::PutLocked(const hash::ContentId& id, Blob blob) {
  if (index_.Contains(id)) return Status::Ok();  // dedupe: same content
  auto evicted = index_.Insert(id, blob.size());
  if (!evicted.ok()) return evicted.status();
  if (inserted_bytes_ != nullptr) inserted_bytes_->Add(blob.size());
  for (const auto& victim : *evicted) {
    if (evictions_ != nullptr) {
      evictions_->Add();
      auto victim_it = payloads_.find(victim);
      if (victim_it != payloads_.end())
        evicted_bytes_->Add(victim_it->second.size());
    }
    payloads_.erase(victim);
  }
  payloads_.emplace(id, std::move(blob));
  return Status::Ok();
}

Result<Blob> ContentStore::Get(const hash::ContentId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!index_.Touch(id)) {
    if (misses_ != nullptr) misses_->Add();
    return NotFoundError("blob not cached: " + id.ShortHex());
  }
  if (hits_ != nullptr) hits_->Add();
  return payloads_.at(id);
}

bool ContentStore::Contains(const hash::ContentId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.Contains(id);
}

Status ContentStore::Pin(const hash::ContentId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.Pin(id);
}

Status ContentStore::Unpin(const hash::ContentId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.Unpin(id);
}

Status ContentStore::Remove(const hash::ContentId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  VINELET_RETURN_IF_ERROR(index_.Remove(id));
  payloads_.erase(id);
  return Status::Ok();
}

std::uint64_t ContentStore::used_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.used_bytes();
}

std::uint64_t ContentStore::capacity_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.capacity_bytes();
}

CacheStats ContentStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.stats();
}

std::vector<ContentStore::Entry> ContentStore::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(payloads_.size());
  for (const auto& [id, blob] : payloads_)
    out.push_back(Entry{id, blob.size()});
  return out;
}

void ContentStore::BindMetrics(telemetry::MetricsRegistry* registry,
                               const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ = &registry->GetCounter(prefix + ".hits");
  misses_ = &registry->GetCounter(prefix + ".misses");
  evictions_ = &registry->GetCounter(prefix + ".evictions");
  inserted_bytes_ = &registry->GetCounter(prefix + ".inserted_bytes");
  evicted_bytes_ = &registry->GetCounter(prefix + ".evicted_bytes");
}

}  // namespace vinelet::storage
