// LRU-with-pinning cache policy, payload-free.
//
// Both the real worker cache (ContentStore) and the simulated worker disks
// share this index.  Entries are content-addressed and read-only; "pinning"
// marks blobs currently bound to a running library or invocation so the
// retain mechanism can guarantee a context's files survive for as long as
// the context is deployed (paper §2.2.3) while still letting cold files age
// out of the bounded local disk.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "hash/content_id.hpp"

namespace vinelet::storage {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t inserted_bytes = 0;
  std::uint64_t evicted_bytes = 0;
};

class CacheIndex {
 public:
  /// capacity_bytes == 0 means unbounded.
  explicit CacheIndex(std::uint64_t capacity_bytes = 0)
      : capacity_(capacity_bytes) {}

  /// Inserts an entry, evicting least-recently-used unpinned entries as
  /// needed.  Fails with kResourceExhausted if the entry cannot fit even
  /// after evicting everything unpinned; fails with kAlreadyExists if
  /// present (use Touch for hits).  On success returns the evicted ids so
  /// the caller can drop payloads / notify the manager.
  Result<std::vector<hash::ContentId>> Insert(const hash::ContentId& id,
                                              std::uint64_t size);

  /// Marks a hit and refreshes recency.  False if absent (counts a miss).
  bool Touch(const hash::ContentId& id);

  bool Contains(const hash::ContentId& id) const;
  std::optional<std::uint64_t> SizeOf(const hash::ContentId& id) const;

  /// Pins are counted; an entry is evictable only at zero pins.
  Status Pin(const hash::ContentId& id);
  Status Unpin(const hash::ContentId& id);
  int PinCount(const hash::ContentId& id) const;

  /// Removes regardless of recency; fails if pinned or absent.
  Status Remove(const hash::ContentId& id);

  std::uint64_t used_bytes() const noexcept { return used_; }
  std::uint64_t capacity_bytes() const noexcept { return capacity_; }
  std::size_t entry_count() const noexcept { return entries_.size(); }
  const CacheStats& stats() const noexcept { return stats_; }

  std::vector<hash::ContentId> Ids() const;

 private:
  struct Entry {
    std::uint64_t size = 0;
    int pins = 0;
    std::list<hash::ContentId>::iterator lru_pos;
  };

  /// Evicts LRU unpinned entries until `needed` bytes are free; returns the
  /// evicted ids, or kResourceExhausted without evicting anything if
  /// freeing that much is impossible.
  Result<std::vector<hash::ContentId>> EvictFor(std::uint64_t needed);

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::list<hash::ContentId> lru_;  // front = most recent
  std::unordered_map<hash::ContentId, Entry> entries_;
  CacheStats stats_;
};

}  // namespace vinelet::storage
