#include "poncho/analyzer.hpp"

#include "poncho/packer.hpp"

namespace vinelet::poncho {

Result<AnalyzedEnvironment> Analyzer::AnalyzeFunctions(
    const serde::FunctionRegistry& registry,
    const std::vector<std::string>& function_names) const {
  auto imports = registry.ImportsOf(function_names);
  if (!imports.ok()) return imports.status();
  return AnalyzeImports(*imports);
}

Result<AnalyzedEnvironment> Analyzer::AnalyzeImports(
    const std::vector<std::string>& imports) const {
  auto packages = catalog_.Resolve(imports);
  if (!packages.ok()) return packages.status();

  AnalyzedEnvironment out;
  out.spec.packages = std::move(*packages);
  out.tarball = Packer::PackEnvironment(out.spec);
  out.tarball_id = hash::ContentId::Of(out.tarball);
  return out;
}

}  // namespace vinelet::poncho
