// Environment packer: the conda-pack analog.
//
// Packs a resolved environment (plus arbitrary data files) into a single
// read-only, content-addressable archive blob — the "specially formatted
// tarball" of paper §3.2 — and unpacks it on the worker into a directory of
// named blobs.  Unpacking synthetic package entries expands them to their
// installed size by deterministic byte generation, so real-runtime unpack
// costs scale with unpacked size the way real decompression does (the paper
// attributes the dominant 15.4 s of worker overhead to exactly this step).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "poncho/package.hpp"

namespace vinelet::poncho {

/// Result of unpacking an archive on a worker.
struct UnpackedDir {
  std::map<std::string, Blob> files;
  std::uint64_t total_bytes = 0;
};

class Packer {
 public:
  /// Packs an environment spec.  Each package becomes one entry whose packed
  /// payload is deterministic bytes of `packed_bytes` length and whose
  /// unpacked size is `unpacked_bytes`.
  static Blob PackEnvironment(const EnvironmentSpec& spec);

  /// Packs verbatim files (unpacked == packed, payload preserved).
  static Blob PackFiles(const std::vector<std::pair<std::string, Blob>>& files);

  /// Unpacks either archive kind; validates magic and per-entry bounds.
  static Result<UnpackedDir> Unpack(const Blob& archive);

  /// Number of entries without unpacking payloads (cheap header scan).
  static Result<std::size_t> CountEntries(const Blob& archive);

  /// Deterministic pseudo-bytes for synthetic payloads: hash-chained from
  /// `seed_name`, so the same package always packs to identical bytes
  /// (content addressing depends on this).
  static Blob DeterministicBytes(const std::string& seed_name,
                                 std::uint64_t size);
};

}  // namespace vinelet::poncho
