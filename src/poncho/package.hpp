// Software-dependency modeling (the Poncho / conda-pack analog).
//
// The paper's discover mechanism scans a function's imports, resolves them
// against a package channel into a pinned environment, and packs that
// environment into a tarball that workers unpack once and reuse (§3.2).
// vinelet models the channel as a PackageCatalog: packages have versions,
// dependency edges, an installed (unpacked) size and a packed size.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace vinelet::poncho {

struct Package {
  std::string name;
  std::string version;
  std::uint64_t unpacked_bytes = 0;
  std::uint64_t packed_bytes = 0;
  std::vector<std::string> depends;  // package names (version-unpinned)
};

/// A conda-channel analog: name → available package definition.
/// (One version per package keeps resolution deterministic; conflicting
/// *requested* pins are still detected and rejected.)
class PackageCatalog {
 public:
  Status Add(Package package);
  Result<Package> Find(const std::string& name) const;
  bool Contains(const std::string& name) const;
  std::size_t size() const noexcept { return packages_.size(); }

  /// Transitive closure of `roots` in deterministic (sorted) order.
  /// Fails with kNotFound if any package is missing from the catalog and
  /// with kFailedPrecondition on dependency cycles.
  Result<std::vector<Package>> Resolve(
      const std::vector<std::string>& roots) const;

  /// A root requirement with an optional version pin ("" = any version) —
  /// the paper's "a specification of all software dependencies ..., with or
  /// without versions specified" (§2.2.1).
  struct Requirement {
    std::string name;
    std::string version;  // "" = unpinned
  };

  /// Resolve with version pins: fails with kFailedPrecondition when a pin
  /// conflicts with the catalog's available version (there is exactly one
  /// version per package in a channel snapshot).
  Result<std::vector<Package>> ResolvePinned(
      const std::vector<Requirement>& requirements) const;

  /// A synthetic catalog shaped like the paper's LNNI environment:
  /// `scale` = 1.0 reproduces 144 packages, ~3.1 GB unpacked, ~572 MB
  /// packed when resolving the "ml-inference" meta-package; smaller scales
  /// shrink byte sizes (not package counts) for the real runtime.
  static PackageCatalog SyntheticMlCatalog(double scale = 1.0);

 private:
  std::map<std::string, Package> packages_;
};

/// A resolved, pinned environment: the unit that gets packed and shipped.
struct EnvironmentSpec {
  std::vector<Package> packages;  // sorted by name, deduplicated

  std::uint64_t TotalUnpackedBytes() const;
  std::uint64_t TotalPackedBytes() const;

  /// Stable identity string ("name=version;..."), hashed for content
  /// addressing so identical environments deduplicate across functions.
  std::string PinnedSpecString() const;
};

}  // namespace vinelet::poncho
