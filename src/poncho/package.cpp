#include "poncho/package.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

namespace vinelet::poncho {

Status PackageCatalog::Add(Package package) {
  if (package.name.empty()) return InvalidArgumentError("package name empty");
  const std::string name = package.name;
  auto [_, inserted] = packages_.emplace(name, std::move(package));
  if (!inserted) return AlreadyExistsError("package already in catalog: " + name);
  return Status::Ok();
}

Result<Package> PackageCatalog::Find(const std::string& name) const {
  auto it = packages_.find(name);
  if (it == packages_.end())
    return NotFoundError("package not in catalog: " + name);
  return it->second;
}

bool PackageCatalog::Contains(const std::string& name) const {
  return packages_.contains(name);
}

Result<std::vector<Package>> PackageCatalog::Resolve(
    const std::vector<std::string>& roots) const {
  // Iterative DFS with three-color marking for cycle detection.
  enum class Mark { kWhite, kGray, kBlack };
  std::map<std::string, Mark> marks;
  std::set<std::string> selected;

  struct Frame {
    std::string name;
    std::size_t next_dep = 0;
  };

  for (const auto& root : roots) {
    if (marks[root] == Mark::kBlack) continue;
    std::vector<Frame> stack;
    stack.push_back({root});
    marks[root] = Mark::kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      auto it = packages_.find(frame.name);
      if (it == packages_.end())
        return NotFoundError("package not in catalog: " + frame.name);
      const Package& pkg = it->second;
      if (frame.next_dep < pkg.depends.size()) {
        const std::string& dep = pkg.depends[frame.next_dep++];
        Mark& mark = marks[dep];
        if (mark == Mark::kGray)
          return FailedPreconditionError("dependency cycle through: " + dep);
        if (mark == Mark::kWhite) {
          mark = Mark::kGray;
          stack.push_back({dep});
        }
      } else {
        marks[frame.name] = Mark::kBlack;
        selected.insert(frame.name);
        stack.pop_back();
      }
    }
  }

  std::vector<Package> out;
  out.reserve(selected.size());
  for (const auto& name : selected) out.push_back(packages_.at(name));
  return out;
}

Result<std::vector<Package>> PackageCatalog::ResolvePinned(
    const std::vector<Requirement>& requirements) const {
  std::vector<std::string> roots;
  roots.reserve(requirements.size());
  for (const auto& requirement : requirements) {
    auto package = Find(requirement.name);
    if (!package.ok()) return package.status();
    if (!requirement.version.empty() &&
        package->version != requirement.version) {
      return FailedPreconditionError(
          "version conflict for " + requirement.name + ": requested " +
          requirement.version + ", channel has " + package->version);
    }
    roots.push_back(requirement.name);
  }
  return Resolve(roots);
}

std::uint64_t EnvironmentSpec::TotalUnpackedBytes() const {
  std::uint64_t total = 0;
  for (const auto& pkg : packages) total += pkg.unpacked_bytes;
  return total;
}

std::uint64_t EnvironmentSpec::TotalPackedBytes() const {
  std::uint64_t total = 0;
  for (const auto& pkg : packages) total += pkg.packed_bytes;
  return total;
}

std::string EnvironmentSpec::PinnedSpecString() const {
  std::string out;
  for (const auto& pkg : packages) {
    out += pkg.name;
    out += '=';
    out += pkg.version;
    out += ';';
  }
  return out;
}

PackageCatalog PackageCatalog::SyntheticMlCatalog(double scale) {
  // Shapes sizes like a real conda ML stack: a few huge packages
  // (tensorflow-analog, numpy/BLAS-analogs) plus a long tail of small ones.
  // At scale=1.0 the "ml-inference" meta-package resolves to 144 packages,
  // ~3.1 GB unpacked and ~572 MB packed, matching the paper's Table 5 notes.
  PackageCatalog catalog;
  auto mb = [scale](double v) {
    return static_cast<std::uint64_t>(v * 1024.0 * 1024.0 * scale);
  };
  auto add = [&catalog](Package pkg) {
    Status status = catalog.Add(std::move(pkg));
    (void)status;  // construction of a fresh catalog cannot collide
  };

  // Core scientific stack (16 heavyweight packages).
  add({"python", "3.10.12", mb(150), mb(28), {}});
  add({"libstdcxx", "13.1", mb(12), mb(3), {}});
  add({"openssl", "3.1.2", mb(8), mb(2.5), {}});
  add({"zlib", "1.2.13", mb(0.5), mb(0.2), {}});
  add({"openblas", "0.3.23", mb(90), mb(16), {"libstdcxx"}});
  add({"numpy", "1.24.3", mb(60), mb(11), {"python", "openblas"}});
  add({"scipy", "1.10.1", mb(110), mb(20), {"numpy"}});
  add({"pandas", "2.0.2", mb(95), mb(17), {"numpy"}});
  add({"pillow", "9.5.0", mb(12), mb(3), {"python", "zlib"}});
  add({"h5py", "3.8.0", mb(18), mb(4), {"numpy"}});
  add({"protobuf", "4.23.2", mb(22), mb(5), {"python"}});
  add({"grpcio", "1.54.2", mb(28), mb(6), {"protobuf", "openssl"}});
  add({"absl-py", "1.4.0", mb(4), mb(1), {"python"}});
  add({"wrapt", "1.14.1", mb(1.5), mb(0.4), {"python"}});
  add({"tensorflow", "2.12.0", mb(1650), mb(310), {"numpy", "protobuf",
       "grpcio", "h5py", "keras-base", "absl-py", "wrapt"}});
  add({"keras-base", "2.12.0", mb(55), mb(10), {"numpy"}});

  // Long tail: 128 small support packages (tools, typing stubs, codecs...),
  // each depending on python, sized to fill the remaining budget so the
  // resolved "ml-inference" environment totals 144 packages, ~3.1 GB
  // unpacked and ~572 MB packed (paper §4.7).
  for (int i = 0; i < 128; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "support-pkg-%03d", i);
    char version[16];
    std::snprintf(version, sizeof(version), "1.%d.0", i % 10);
    add({name, version, mb(6.17), mb(1.06), {"python"}});
  }

  // Meta-packages applications resolve against.
  std::vector<std::string> ml_deps = {"tensorflow", "scipy", "pandas",
                                      "pillow"};
  for (int i = 0; i < 128; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "support-pkg-%03d", i);
    ml_deps.emplace_back(name);
  }
  add({"ml-inference", "1.0.0", 0, 0, std::move(ml_deps)});

  // A lighter chemistry stack for the ExaMol-style application.
  add({"rdkit-analog", "2023.03", mb(420), mb(85), {"numpy", "pillow"}});
  add({"sklearn-analog", "1.2.2", mb(130), mb(25), {"scipy"}});
  add({"mopac-analog", "22.0", mb(65), mb(14), {"libstdcxx"}});
  add({"chem-design", "1.0.0", 0, 0,
       {"rdkit-analog", "sklearn-analog", "mopac-analog", "pandas"}});

  return catalog;
}

}  // namespace vinelet::poncho
