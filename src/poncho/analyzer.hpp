// The Poncho analyzer: from function names to a packed environment.
//
// Models the paper's pipeline (§3.2, "Software dependencies"): TaskVine
// extracts the functions' code, Poncho scans their ASTs for imported
// modules, resolves them against a channel into a pinned Conda environment,
// and conda-packs it into a tarball bound to the function context.  Here the
// "AST scan" is the imports declared on registered FunctionDefs, resolution
// happens against a PackageCatalog, and packing produces a Packer archive.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "hash/content_id.hpp"
#include "poncho/package.hpp"
#include "serde/function_registry.hpp"

namespace vinelet::poncho {

/// A fully analyzed environment ready to attach to a function context.
struct AnalyzedEnvironment {
  EnvironmentSpec spec;
  Blob tarball;
  hash::ContentId tarball_id;
};

class Analyzer {
 public:
  explicit Analyzer(PackageCatalog catalog) : catalog_(std::move(catalog)) {}

  const PackageCatalog& catalog() const noexcept { return catalog_; }

  /// Scans `function_names` in `registry` (functions + their context
  /// setups), resolves the union of their imports, and packs the result.
  Result<AnalyzedEnvironment> AnalyzeFunctions(
      const serde::FunctionRegistry& registry,
      const std::vector<std::string>& function_names) const;

  /// Resolves an explicit import list (the "user provides a specification"
  /// path of §2.2.1).
  Result<AnalyzedEnvironment> AnalyzeImports(
      const std::vector<std::string>& imports) const;

 private:
  PackageCatalog catalog_;
};

}  // namespace vinelet::poncho
