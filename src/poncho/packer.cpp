#include "poncho/packer.hpp"

#include "hash/sha256.hpp"
#include "serde/archive.hpp"

namespace vinelet::poncho {
namespace {

constexpr std::string_view kArchiveMagic = "VTAR1";

enum class EntryKind : std::uint8_t {
  kStored = 0,               // payload is the file content verbatim
  kCompressedSynthetic = 1,  // payload is a seed; expand to unpacked size
};

}  // namespace

Blob Packer::DeterministicBytes(const std::string& seed_name,
                                std::uint64_t size) {
  ByteBuffer out;
  out.Reserve(static_cast<std::size_t>(size));
  hash::Sha256::Digest block = hash::Sha256::Hash(seed_name);
  while (out.size() < size) {
    const std::size_t take =
        std::min<std::size_t>(block.size(), static_cast<std::size_t>(size) - out.size());
    out.Append(std::span<const std::uint8_t>(block.data(), take));
    block = hash::Sha256::Hash(
        std::span<const std::uint8_t>(block.data(), block.size()));
  }
  return Blob(std::move(out));
}

Blob Packer::PackEnvironment(const EnvironmentSpec& spec) {
  serde::ArchiveWriter writer;
  writer.WriteString(std::string(kArchiveMagic));
  writer.WriteU64(spec.packages.size());
  for (const auto& pkg : spec.packages) {
    writer.WriteString(pkg.name + "-" + pkg.version);
    writer.WriteU8(static_cast<std::uint8_t>(EntryKind::kCompressedSynthetic));
    writer.WriteU64(pkg.unpacked_bytes);
    const Blob payload =
        DeterministicBytes(pkg.name + "=" + pkg.version, pkg.packed_bytes);
    writer.WriteBytes(payload.span());
  }
  return std::move(writer).ToBlob();
}

Blob Packer::PackFiles(
    const std::vector<std::pair<std::string, Blob>>& files) {
  serde::ArchiveWriter writer;
  writer.WriteString(std::string(kArchiveMagic));
  writer.WriteU64(files.size());
  for (const auto& [name, payload] : files) {
    writer.WriteString(name);
    writer.WriteU8(static_cast<std::uint8_t>(EntryKind::kStored));
    writer.WriteU64(payload.size());
    writer.WriteBytes(payload.span());
  }
  return std::move(writer).ToBlob();
}

Result<UnpackedDir> Packer::Unpack(const Blob& archive) {
  serde::ArchiveReader reader(archive);
  auto magic = reader.ReadString();
  if (!magic.ok()) return magic.status();
  if (*magic != kArchiveMagic) return DataLossError("bad archive magic");
  auto count = reader.ReadU64();
  if (!count.ok()) return count.status();

  UnpackedDir dir;
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto name = reader.ReadString();
    if (!name.ok()) return name.status();
    auto kind = reader.ReadU8();
    if (!kind.ok()) return kind.status();
    auto unpacked_size = reader.ReadU64();
    if (!unpacked_size.ok()) return unpacked_size.status();
    auto payload = reader.ReadBytes();
    if (!payload.ok()) return payload.status();

    switch (static_cast<EntryKind>(*kind)) {
      case EntryKind::kStored: {
        if (payload->size() != *unpacked_size)
          return DataLossError("stored entry size mismatch: " + *name);
        Blob blob(std::move(*payload));
        dir.total_bytes += blob.size();
        dir.files.emplace(std::move(*name), std::move(blob));
        break;
      }
      case EntryKind::kCompressedSynthetic: {
        // "Decompress": regenerate the installed bytes from the payload
        // seed.  Hash-chaining over the whole output is the CPU cost.
        Blob blob = DeterministicBytes(*name + ":unpacked", *unpacked_size);
        dir.total_bytes += blob.size();
        dir.files.emplace(std::move(*name), std::move(blob));
        break;
      }
      default:
        return DataLossError("unknown archive entry kind");
    }
  }
  if (!reader.AtEnd()) return DataLossError("trailing bytes in archive");
  return dir;
}

Result<std::size_t> Packer::CountEntries(const Blob& archive) {
  serde::ArchiveReader reader(archive);
  auto magic = reader.ReadString();
  if (!magic.ok()) return magic.status();
  if (*magic != kArchiveMagic) return DataLossError("bad archive magic");
  auto count = reader.ReadU64();
  if (!count.ok()) return count.status();
  return static_cast<std::size_t>(*count);
}

}  // namespace vinelet::poncho
