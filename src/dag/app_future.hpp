// AppFuture: the handle a DAG application holds for a pending invocation.
//
// Unlike core::OutcomeFuture (one remote execution), an AppFuture represents
// a DAG node: it may still be waiting on upstream futures before its
// invocation is even dispatched.  The parallel library "maintains a DAG of
// function invocations ... and sends ready tasks to the execution engine"
// (paper §1); AppFutures are the edges of that DAG.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "common/status.hpp"
#include "serde/value.hpp"

namespace vinelet::dag {

using NodeId = std::uint64_t;

class AppFuture {
 public:
  explicit AppFuture(NodeId node) : node_(node) {}

  NodeId node() const noexcept { return node_; }

  bool Ready() const {
    std::lock_guard<std::mutex> lock(mu_);
    return result_.has_value();
  }

  /// Blocks until the node (and transitively its dependencies) completes.
  Result<serde::Value> Wait() const {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return result_.has_value(); });
    return *result_;
  }

  std::optional<Result<serde::Value>> WaitFor(double timeout_s) const {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                      [&] { return result_.has_value(); }))
      return std::nullopt;
    return *result_;
  }

  /// Resolution entry point; called by the DagEngine only.
  void Resolve(Result<serde::Value> result) {
    std::lock_guard<std::mutex> lock(mu_);
    if (result_.has_value()) return;
    result_.emplace(std::move(result));
    cv_.notify_all();
  }

 private:
  NodeId node_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::optional<Result<serde::Value>> result_;
};

using AppFuturePtr = std::shared_ptr<AppFuture>;

}  // namespace vinelet::dag
