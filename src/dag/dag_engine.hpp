// DagEngine: a miniature Parsl.
//
// Applications submit function calls whose arguments may be AppFutures from
// earlier calls; the engine tracks the resulting DAG, dispatches a node to
// the Executor the moment its dependencies resolve, and fans completions out
// to dependents.  Purely event-driven: completions arrive via
// OutcomeFuture::OnReady callbacks and are serialized through one internal
// channel, so engine state needs no locking beyond that queue.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <variant>
#include <vector>

#include "common/channel.hpp"
#include "dag/app_future.hpp"
#include "dag/executor.hpp"

namespace vinelet::dag {

/// A call argument: an immediate value or the future of an earlier call.
using Arg = std::variant<serde::Value, AppFuturePtr>;

class DagEngine {
 public:
  explicit DagEngine(Executor* executor);
  ~DagEngine();

  DagEngine(const DagEngine&) = delete;
  DagEngine& operator=(const DagEngine&) = delete;

  /// Submits a call whose arguments may include futures.  The function
  /// eventually receives a Value::List of the materialized arguments.
  /// If any dependency fails, the node fails with kCancelled without
  /// dispatching (failure propagates down the DAG, as in Parsl).
  AppFuturePtr Submit(AppCall call, std::vector<Arg> args);

  /// Blocks until every node submitted so far has resolved.
  void WaitAll();

  std::uint64_t nodes_submitted() const noexcept {
    return nodes_submitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t nodes_completed() const noexcept {
    return nodes_completed_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    AppCall call;
    std::vector<Arg> args;
    AppFuturePtr future;
    std::size_t pending_deps = 0;
    std::vector<NodeId> dependents;
    bool dispatched = false;
    bool failed = false;
  };

  struct SubmitEvent {
    NodeId id = 0;
  };
  struct DepDoneEvent {
    NodeId id = 0;  // the completed node
  };
  struct ExecDoneEvent {
    NodeId id = 0;
    Result<core::Outcome> outcome{Status()};
  };
  using Event = std::variant<SubmitEvent, ExecDoneEvent>;

  void Run();
  void ProcessSubmit(NodeId id);
  void ProcessExecDone(NodeId id, const Result<core::Outcome>& outcome);
  void Dispatch(Node& node);
  void ResolveNode(NodeId id, Result<serde::Value> result);

  Executor* executor_;
  Channel<Event> events_;
  std::thread thread_;

  std::mutex nodes_mu_;  // guards nodes_ map shape (Submit vs engine thread)
  std::map<NodeId, std::unique_ptr<Node>> nodes_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> nodes_submitted_{0};
  std::atomic<std::uint64_t> nodes_completed_{0};

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  std::uint64_t outstanding_ = 0;
};

}  // namespace vinelet::dag
