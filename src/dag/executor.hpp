// Executor boundary between the parallel library (DAG layer) and the
// execution engine.
//
// VineletExecutor is the analog of the paper's Parsl-TaskVineExecutor
// (§3.6): "it receives an arbitrary stream of function invocations ...
// packages the invocation into either a TaskVine Task or FunctionCall,
// executes it, and returns the result."  An AppCall routes to
// Manager::SubmitCall when it names an installed library (invocation mode),
// or Manager::SubmitTask otherwise (task mode), so the same DAG application
// can run at any context-reuse level by flipping its AppCalls.
#pragma once

#include <string>
#include <vector>

#include "core/future.hpp"
#include "core/manager.hpp"
#include "core/resources.hpp"
#include "serde/value.hpp"
#include "storage/file_decl.hpp"

namespace vinelet::dag {

/// One invocation request from the DAG layer.
struct AppCall {
  /// Library to invoke against; empty = execute as a stateless task.
  std::string library;
  std::string function;

  /// Task mode only: input files and resources for the wrapped task.
  std::vector<storage::FileDecl> task_inputs;
  core::Resources task_resources{1, 1024, 1024};
};

/// Anything that can execute a fully-materialized invocation.
class Executor {
 public:
  virtual ~Executor() = default;
  virtual core::FuturePtr Execute(const AppCall& call,
                                  const serde::Value& args) = 0;
};

class VineletExecutor final : public Executor {
 public:
  explicit VineletExecutor(core::Manager* manager) : manager_(manager) {}

  core::FuturePtr Execute(const AppCall& call,
                          const serde::Value& args) override {
    if (!call.library.empty())
      return manager_->SubmitCall(call.library, call.function, args);
    return manager_->SubmitTask(call.function, args, call.task_inputs,
                                call.task_resources);
  }

 private:
  core::Manager* manager_;
};

}  // namespace vinelet::dag
