#include "dag/dag_engine.hpp"

#include <deque>

#include "common/log.hpp"

namespace vinelet::dag {

DagEngine::DagEngine(Executor* executor) : executor_(executor) {
  thread_ = std::thread([this] { Run(); });
}

DagEngine::~DagEngine() {
  events_.Close();
  if (thread_.joinable()) thread_.join();
  // Anything still unresolved is cancelled so waiters wake up.
  std::lock_guard<std::mutex> lock(nodes_mu_);
  for (auto& [_, node] : nodes_) {
    if (!node->future->Ready())
      node->future->Resolve(CancelledError("dag engine destroyed"));
  }
  std::lock_guard<std::mutex> wait_lock(wait_mu_);
  outstanding_ = 0;
  wait_cv_.notify_all();
}

AppFuturePtr DagEngine::Submit(AppCall call, std::vector<Arg> args) {
  const NodeId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  auto node = std::make_unique<Node>();
  node->call = std::move(call);
  node->args = std::move(args);
  node->future = std::make_shared<AppFuture>(id);
  AppFuturePtr future = node->future;
  {
    std::lock_guard<std::mutex> lock(nodes_mu_);
    nodes_.emplace(id, std::move(node));
  }
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    ++outstanding_;
  }
  nodes_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!events_.Send(SubmitEvent{id})) {
    future->Resolve(CancelledError("dag engine stopped"));
    std::lock_guard<std::mutex> lock(wait_mu_);
    if (outstanding_ > 0) --outstanding_;
    wait_cv_.notify_all();
  }
  return future;
}

void DagEngine::WaitAll() {
  std::unique_lock<std::mutex> lock(wait_mu_);
  wait_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

void DagEngine::Run() {
  while (auto event = events_.Recv()) {
    std::visit(
        [&](auto&& e) {
          using T = std::decay_t<decltype(e)>;
          if constexpr (std::is_same_v<T, SubmitEvent>) {
            ProcessSubmit(e.id);
          } else if constexpr (std::is_same_v<T, ExecDoneEvent>) {
            ProcessExecDone(e.id, e.outcome);
          }
        },
        std::move(*event));
  }
}

void DagEngine::ProcessSubmit(NodeId id) {
  Node* node = nullptr;
  {
    std::lock_guard<std::mutex> lock(nodes_mu_);
    auto it = nodes_.find(id);
    if (it == nodes_.end()) return;
    node = it->second.get();
  }
  // Wire dependencies: a future arg either already has a value, or we hook
  // this node onto its producer's dependents list.
  for (const Arg& arg : node->args) {
    const auto* dep_future = std::get_if<AppFuturePtr>(&arg);
    if (dep_future == nullptr) continue;
    Node* producer = nullptr;
    {
      std::lock_guard<std::mutex> lock(nodes_mu_);
      auto it = nodes_.find((*dep_future)->node());
      if (it != nodes_.end()) producer = it->second.get();
    }
    if (producer == nullptr) {
      ResolveNode(id, InvalidArgumentError(
                          "dependency future from a different engine"));
      return;
    }
    if ((*dep_future)->Ready()) {
      auto dep_result = (*dep_future)->Wait();  // non-blocking: ready
      if (!dep_result.ok()) {
        ResolveNode(id, CancelledError("dependency failed: " +
                                       dep_result.status().ToString()));
        return;
      }
      continue;  // value available; nothing pending
    }
    producer->dependents.push_back(id);
    ++node->pending_deps;
  }
  if (node->pending_deps == 0) Dispatch(*node);
}

void DagEngine::Dispatch(Node& node) {
  if (node.dispatched || node.failed) return;
  node.dispatched = true;

  // Materialize arguments: every future arg is resolved by now.
  serde::ValueList materialized;
  materialized.reserve(node.args.size());
  for (const Arg& arg : node.args) {
    if (const auto* value = std::get_if<serde::Value>(&arg)) {
      materialized.push_back(*value);
    } else {
      auto dep_result = std::get<AppFuturePtr>(arg)->Wait();  // ready
      if (!dep_result.ok()) {
        ResolveNode(node.future->node(),
                    CancelledError("dependency failed: " +
                                   dep_result.status().ToString()));
        return;
      }
      materialized.push_back(std::move(*dep_result));
    }
  }

  const NodeId id = node.future->node();
  core::FuturePtr exec_future =
      executor_->Execute(node.call, serde::Value(std::move(materialized)));
  exec_future->OnReady([this, id](const Result<core::Outcome>& outcome) {
    // Executes on the manager thread; hop back onto the engine thread.
    if (!events_.Send(ExecDoneEvent{id, outcome})) {
      // Engine is shutting down; the destructor cancels the node.
    }
  });
}

void DagEngine::ProcessExecDone(NodeId id,
                                const Result<core::Outcome>& outcome) {
  if (outcome.ok()) {
    ResolveNode(id, outcome.value().value);
  } else {
    ResolveNode(id, outcome.status());
  }
}

void DagEngine::ResolveNode(NodeId id, Result<serde::Value> result) {
  // Iterative resolution: a failure cancels the whole downstream cone.
  std::deque<std::pair<NodeId, Result<serde::Value>>> work;
  work.emplace_back(id, std::move(result));
  while (!work.empty()) {
    auto [node_id, node_result] = std::move(work.front());
    work.pop_front();

    Node* node = nullptr;
    {
      std::lock_guard<std::mutex> lock(nodes_mu_);
      auto it = nodes_.find(node_id);
      if (it == nodes_.end()) continue;
      node = it->second.get();
    }
    if (node->future->Ready()) continue;  // already resolved (cancelled)
    const bool ok = node_result.ok();
    Status failure = node_result.status();
    node->failed = !ok;
    // Counters update before the future resolves so a waiter that wakes on
    // Resolve observes a consistent completed count.
    nodes_completed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(wait_mu_);
      if (outstanding_ > 0) --outstanding_;
      wait_cv_.notify_all();
    }
    node->future->Resolve(std::move(node_result));

    for (NodeId dependent_id : node->dependents) {
      Node* dependent = nullptr;
      {
        std::lock_guard<std::mutex> lock(nodes_mu_);
        auto it = nodes_.find(dependent_id);
        if (it != nodes_.end()) dependent = it->second.get();
      }
      if (dependent == nullptr || dependent->failed) continue;
      if (!ok) {
        work.emplace_back(
            dependent_id,
            Result<serde::Value>(CancelledError("dependency failed: " +
                                                failure.ToString())));
        continue;
      }
      if (dependent->pending_deps > 0 && --dependent->pending_deps == 0)
        Dispatch(*dependent);
    }
  }
}

}  // namespace vinelet::dag
