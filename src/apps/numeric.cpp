#include "apps/numeric.hpp"

#include <cmath>

namespace vinelet::apps {

double Dot(const Vec& a, const Vec& b) {
  double sum = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

Vec MatVec(const Mat& m, const Vec& x) {
  Vec y(m.rows, 0.0);
  for (std::size_t r = 0; r < m.rows; ++r) {
    double sum = 0.0;
    const double* row = m.data.data() + r * m.cols;
    for (std::size_t c = 0; c < m.cols; ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
  return y;
}

Vec SyntheticFeatures(std::uint64_t key, std::size_t dim) {
  // SplitMix64 stream mapped to [-1, 1); deterministic per key.
  Vec out(dim);
  std::uint64_t x = key * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  for (std::size_t i = 0; i < dim; ++i) {
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    out[i] = static_cast<double>(z >> 11) * 0x1.0p-52 - 1.0;
  }
  return out;
}

Result<Vec> CholeskySolve(Mat s, Vec b) {
  if (s.rows != s.cols || s.rows != b.size())
    return InvalidArgumentError("CholeskySolve: shape mismatch");
  const std::size_t n = s.rows;
  // Factor S = L L^T in place (lower triangle).
  for (std::size_t j = 0; j < n; ++j) {
    double diag = s.at(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= s.at(j, k) * s.at(j, k);
    if (diag <= 0.0)
      return FailedPreconditionError("CholeskySolve: not positive definite");
    const double ljj = std::sqrt(diag);
    s.at(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = s.at(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= s.at(i, k) * s.at(j, k);
      s.at(i, j) = sum / ljj;
    }
  }
  // Forward solve L z = b.
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= s.at(i, k) * b[k];
    b[i] = sum / s.at(i, i);
  }
  // Back solve L^T w = z.
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= s.at(k, i) * b[k];
    b[i] = sum / s.at(i, i);
  }
  return b;
}

Result<Vec> RidgeSolve(const Mat& a, const Vec& y, double lambda) {
  if (a.rows != y.size())
    return InvalidArgumentError("RidgeSolve: shape mismatch");
  const std::size_t d = a.cols;
  Mat gram(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      double sum = 0.0;
      for (std::size_t r = 0; r < a.rows; ++r)
        sum += a.at(r, i) * a.at(r, j);
      gram.at(i, j) = sum;
      gram.at(j, i) = sum;
    }
    gram.at(i, i) += lambda;
  }
  Vec rhs(d, 0.0);
  for (std::size_t i = 0; i < d; ++i) {
    double sum = 0.0;
    for (std::size_t r = 0; r < a.rows; ++r) sum += a.at(r, i) * y[r];
    rhs[i] = sum;
  }
  return CholeskySolve(std::move(gram), std::move(rhs));
}

}  // namespace vinelet::apps
