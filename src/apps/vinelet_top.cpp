// vinelet-top: a live, top-like terminal view of a running cluster.
//
// Spins up an in-process demo cluster, declares a per-library SLO, attaches
// the windowed time-series sampler, and drives an open-loop LNNI workload
// while redrawing one screen per interval:
//
//   * header — invocation completion rate, per-window p50/p99/p999 round
//     trip (from the latest TimeSeriesStore window), active libraries;
//   * per-library SLO columns — samples, violation fraction, burn rate,
//     goodput, breach flags;
//   * per-worker rows — inbox depth, tasks, cache bytes, p95 latency,
//     straggler flag.
//
// On exit the retained time-series ring can be dumped as JSON-lines with
// --timeseries, and the exit code is 3 if the final status carries a
// straggler or SLO breach (0 otherwise), mirroring vinelet-status.
//
//   $ ./vinelet-top [--interval S] [--duration S] [--workers N]
//                   [--rate PER_S] [--slo-latency S] [--timeseries PATH]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "apps/lnni.hpp"
#include "core/factory.hpp"
#include "core/manager.hpp"
#include "poncho/analyzer.hpp"
#include "telemetry/export.hpp"
#include "telemetry/timeseries.hpp"

using namespace vinelet;
using serde::Value;

namespace {

void DrawScreen(const core::ClusterStatus& status,
                const telemetry::TimeSeriesStore& store, double elapsed_s) {
  std::printf("\x1b[2J\x1b[H");
  std::printf("vinelet-top  t=%.1fs\n", elapsed_s);

  const std::vector<telemetry::TimeSeriesWindow> windows = store.Windows();
  if (!windows.empty()) {
    const telemetry::TimeSeriesWindow& w = windows.back();
    const auto c = w.counters.find("manager.invocations_completed");
    const auto h = w.histograms.find("manager.invocation_roundtrip_s");
    const auto g = w.gauges.find("manager.libraries_active");
    std::printf("window %.1f-%.1fs:", w.start_s, w.end_s);
    if (c != w.counters.end())
      std::printf("  done %llu (%.1f/s)",
                  static_cast<unsigned long long>(c->second.delta),
                  c->second.rate);
    if (h != w.histograms.end())
      std::printf("  rt p50 %.4fs p99 %.4fs p999 %.4fs", h->second.p50,
                  h->second.p99, h->second.p999);
    if (g != w.gauges.end()) std::printf("  libs %.0f", g->second);
    std::printf("\n");
  }

  std::printf("\n%-12s %8s %8s %8s %8s %10s %8s  %s\n", "LIBRARY", "SAMPLES",
              "VIOL", "P50", "P99", "GOODPUT/S", "BURN", "FLAGS");
  for (const auto& slo : status.slo) {
    std::string flags;
    if (slo.latency_breached) flags += "LATENCY ";
    if (slo.goodput_breached) flags += "GOODPUT ";
    std::printf("%-12s %8zu %8.3f %8.4f %8.4f %10.2f %8.2f  %s\n",
                slo.library.c_str(), slo.samples, slo.violation_fraction,
                slo.p50_s, slo.p99_s, slo.goodput_per_s, slo.burn_rate,
                flags.c_str());
  }

  std::printf("\n%-8s %8s %8s %12s %10s %10s  %s\n", "WORKER", "INBOX",
              "TASKS", "CACHE B", "P95 s", "SAMPLES", "FLAGS");
  for (const auto& worker : status.workers) {
    std::printf("%-8llu %8llu %8llu %12llu %10.4f %10llu  %s\n",
                static_cast<unsigned long long>(worker.id),
                static_cast<unsigned long long>(worker.inbox_depth),
                static_cast<unsigned long long>(worker.tasks_executed),
                static_cast<unsigned long long>(worker.CacheBytes()),
                worker.p95_latency_s,
                static_cast<unsigned long long>(worker.latency_samples),
                worker.straggler ? "STRAGGLER" : "");
  }
  std::printf("\ntask queue %llu",
              static_cast<unsigned long long>(status.task_queue_depth));
  for (const auto& queue : status.library_queues)
    std::printf("  %s queued %llu", queue.library.c_str(),
                static_cast<unsigned long long>(queue.queued));
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  double interval_s = 0.5;
  double duration_s = 5.0;
  std::size_t workers = 3;
  double rate_per_s = 40.0;
  double slo_latency_s = 0.5;
  std::string timeseries_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      interval_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      rate_per_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--slo-latency") == 0 && i + 1 < argc) {
      slo_latency_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--timeseries") == 0 && i + 1 < argc) {
      timeseries_path = argv[++i];
    } else {
      std::printf(
          "usage: %s [--interval S] [--duration S] [--workers N]"
          " [--rate PER_S] [--slo-latency S] [--timeseries PATH]\n",
          argv[0]);
      return 2;
    }
  }
  if (interval_s <= 0.0) interval_s = 0.5;

  serde::FunctionRegistry registry;
  apps::LnniConfig lnni;
  lnni.dim = 48;
  lnni.layers = 3;
  lnni.build_passes = 16;
  if (Status status = apps::RegisterLnniFunctions(registry, lnni);
      !status.ok()) {
    std::printf("register failed: %s\n", status.ToString().c_str());
    return 1;
  }

  auto network = std::make_shared<net::Network>();
  core::ManagerConfig manager_config;
  manager_config.registry = &registry;
  {
    telemetry::SloTarget target;
    target.library = "lnni";
    target.latency_target_s = slo_latency_s;
    target.target_fraction = 0.95;
    target.window_s = 30.0;
    manager_config.slo.targets.push_back(target);
  }
  core::Manager manager(network, manager_config);
  (void)manager.Start();
  core::FactoryConfig factory_config;
  factory_config.initial_workers = workers;
  factory_config.registry = &registry;
  factory_config.telemetry = &manager.telemetry();
  core::Factory factory(network, factory_config);
  (void)factory.Start();
  (void)manager.WaitForWorkers(workers, 30.0);

  // Windowed sampler over the cluster's shared registry, one window per
  // refresh interval.
  telemetry::TimeSeriesConfig ts_config;
  ts_config.window_s = interval_s;
  telemetry::TimeSeriesStore store(&manager.telemetry().metrics, ts_config);
  telemetry::BackgroundSampler sampler(&store, &manager.telemetry().clock);
  sampler.Start();

  poncho::Analyzer analyzer(poncho::PackageCatalog::SyntheticMlCatalog(0.005));
  auto env = analyzer.AnalyzeImports({"ml-inference"}).value();
  auto env_decl = manager.DeclareBlob("env", env.tarball,
                                      storage::FileKind::kEnvironment,
                                      /*cache=*/true, /*peer_transfer=*/true,
                                      /*unpack=*/true);
  auto weights_decl =
      manager.DeclareBlob(lnni.weights_file, apps::MakeLnniWeightsBlob(lnni),
                          storage::FileKind::kData, /*cache=*/true);
  auto spec = manager.CreateLibraryFromFunctions("lnni", {"lnni_infer"},
                                                 "lnni_setup", Value());
  manager.AddLibraryInput(*spec, env_decl);
  manager.AddLibraryInput(*spec, weights_decl);
  spec->slots = 4;
  (void)manager.InstallLibrary(*spec);

  // Open-loop submitter: a fixed arrival rate, independent of completions.
  std::atomic<bool> stop_submitting{false};
  std::thread submitter([&] {
    int seed = 0;
    const auto gap = std::chrono::duration<double>(1.0 / rate_per_s);
    while (!stop_submitting.load(std::memory_order_relaxed)) {
      (void)manager.SubmitCall(
          "lnni", "lnni_infer",
          Value::Dict({{"count", Value(8)}, {"seed", Value(seed++)}}));
      std::this_thread::sleep_for(gap);
    }
  });

  const auto started = std::chrono::steady_clock::now();
  core::ClusterStatus last_status;
  while (true) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    if (elapsed >= duration_s) break;
    auto status = manager.QueryStatus();
    if (status.ok()) {
      last_status = *status;
      DrawScreen(last_status, store, elapsed);
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
  }

  stop_submitting.store(true, std::memory_order_relaxed);
  submitter.join();
  (void)manager.WaitAll(60.0);
  sampler.Stop();

  auto final_status = manager.QueryStatus();
  if (final_status.ok()) {
    last_status = *final_status;
    DrawScreen(last_status, store,
               std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - started)
                   .count());
  }

  if (!timeseries_path.empty()) {
    if (Status status =
            telemetry::WriteStringToFile(timeseries_path, store.ToJsonLines());
        !status.ok()) {
      std::printf("timeseries write failed: %s\n", status.ToString().c_str());
    } else {
      std::printf("wrote %zu window(s) to %s\n", store.Windows().size(),
                  timeseries_path.c_str());
    }
  }

  const bool unhealthy =
      core::AnyStraggler(last_status) || core::AnySloBreach(last_status);
  manager.Stop();
  factory.Stop();
  return unhealthy ? 3 : 0;
}
