#include "apps/lnni.hpp"

#include <cmath>

#include "apps/numeric.hpp"
#include "serde/archive.hpp"

namespace vinelet::apps {
namespace {

/// Parses a weights blob into a flat vector ("load parameters from disk").
Result<std::vector<double>> ParseWeights(const Blob& blob,
                                         const LnniConfig& config) {
  serde::ArchiveReader reader(blob);
  auto magic = reader.ReadString();
  if (!magic.ok()) return magic.status();
  if (*magic != "LNNIW1") return DataLossError("bad weights magic");
  auto count = reader.ReadU64();
  if (!count.ok()) return count.status();
  const std::size_t expected = config.dim * config.dim * config.layers;
  if (*count != expected) return DataLossError("weights size mismatch");
  std::vector<double> weights;
  weights.reserve(expected);
  for (std::size_t i = 0; i < expected; ++i) {
    auto w = reader.ReadF64();
    if (!w.ok()) return w.status();
    weights.push_back(*w);
  }
  return weights;
}

/// "Builds the model": several normalization passes over the weights — an
/// expensive, deterministic transform whose output every inference needs.
std::vector<double> BuildModel(std::vector<double> weights,
                               const LnniConfig& config) {
  for (std::size_t pass = 0; pass < config.build_passes; ++pass) {
    double norm = 0.0;
    for (double w : weights) norm += w * w;
    norm = std::sqrt(norm / static_cast<double>(weights.size())) + 1e-9;
    for (double& w : weights) w = std::tanh(w / norm);
  }
  return weights;
}

Result<std::shared_ptr<LnniModel>> LoadAndBuild(const Blob& blob,
                                                const LnniConfig& config) {
  auto weights = ParseWeights(blob, config);
  if (!weights.ok()) return weights.status();
  return std::make_shared<LnniModel>(BuildModel(std::move(*weights), config),
                                     config.dim, config.layers);
}

}  // namespace

Blob MakeLnniWeightsBlob(const LnniConfig& config) {
  const std::size_t count = config.dim * config.dim * config.layers;
  Vec values = SyntheticFeatures(config.weights_seed, count);
  serde::ArchiveWriter writer;
  writer.WriteString("LNNIW1");
  writer.WriteU64(count);
  for (double v : values) writer.WriteF64(v);
  return std::move(writer).ToBlob();
}

std::int64_t LnniModel::Infer(std::uint64_t image_key) const {
  // Forward pass: image -> layers_ matrix products -> argmax over classes.
  Vec activation = SyntheticFeatures(image_key, dim_);
  for (std::size_t layer = 0; layer < layers_; ++layer) {
    Vec next(dim_, 0.0);
    const double* w = weights_.data() + layer * dim_ * dim_;
    for (std::size_t r = 0; r < dim_; ++r) {
      double sum = 0.0;
      for (std::size_t c = 0; c < dim_; ++c)
        sum += w[r * dim_ + c] * activation[c];
      next[r] = sum > 0 ? sum : 0.01 * sum;  // leaky ReLU
    }
    activation = std::move(next);
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < activation.size(); ++i)
    if (activation[i] > activation[best]) best = i;
  return static_cast<std::int64_t>(best % 1000);  // 1,000 ImageNet classes
}

Status RegisterLnniFunctions(serde::FunctionRegistry& registry,
                             const LnniConfig& config) {
  serde::ContextSetupDef setup;
  setup.name = "lnni_setup";
  setup.imports = {"ml-inference"};
  setup.fn = [config](const serde::Value&, const serde::InvocationEnv& env)
      -> Result<serde::ContextHandle> {
    if (!env.HasFile(config.weights_file))
      return NotFoundError("weights file not staged: " + config.weights_file);
    auto model = LoadAndBuild(env.File(config.weights_file), config);
    if (!model.ok()) return model.status();
    return serde::ContextHandle(std::move(*model));
  };
  Status setup_status = registry.RegisterSetup(std::move(setup));
  if (!setup_status.ok() && setup_status.code() != ErrorCode::kAlreadyExists)
    return setup_status;

  serde::FunctionDef infer;
  infer.name = "lnni_infer";
  infer.setup_name = "lnni_setup";
  infer.imports = {"ml-inference"};
  infer.fn = [config](const serde::Value& args,
                      const serde::InvocationEnv& env) -> Result<serde::Value> {
    auto count = args.GetInt("count");
    if (!count.ok()) return count.status();
    auto seed = args.GetInt("seed");
    if (!seed.ok()) return seed.status();

    // The reusable context: either retained by the library (L3) or rebuilt
    // right here, every invocation (L1/L2).
    const LnniModel* model = dynamic_cast<const LnniModel*>(env.context);
    std::shared_ptr<LnniModel> local;
    const bool rebuilt = model == nullptr;
    if (rebuilt) {
      if (!env.HasFile(config.weights_file))
        return NotFoundError("weights file not staged: " +
                             config.weights_file);
      auto built = LoadAndBuild(env.File(config.weights_file), config);
      if (!built.ok()) return built.status();
      local = std::move(*built);
      model = local.get();
    }

    double checksum = 0.0;
    std::int64_t last_class = 0;
    for (std::int64_t i = 0; i < *count; ++i) {
      last_class =
          model->Infer(static_cast<std::uint64_t>(*seed + i * 7919));
      checksum += static_cast<double>(last_class);
    }
    serde::ValueDict out;
    out["classified"] = serde::Value(last_class);
    out["checksum"] = serde::Value(checksum);
    out["rebuilt"] = serde::Value(rebuilt);
    return serde::Value(std::move(out));
  };
  Status fn_status = registry.RegisterFunction(std::move(infer));
  if (!fn_status.ok() && fn_status.code() != ErrorCode::kAlreadyExists)
    return fn_status;
  return Status::Ok();
}

}  // namespace vinelet::apps
