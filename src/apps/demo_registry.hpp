// Canonical demo workload shared by the multi-process deployment pieces.
//
// vinelet-managerd, vinelet-workerd, and the TCP leg of the Figure 8 bench
// all execute the same LNNI functions, so the function registry contents
// (and the LnniConfig they were registered with) must agree byte-for-byte
// across processes: a workerd started with a different model shape would
// happily accept invocations and return different results.  This header is
// the single source of that configuration.
#pragma once

#include "apps/lnni.hpp"
#include "serde/function_registry.hpp"

namespace vinelet::apps {

/// The demo model shape every daemon and bench process must use.
LnniConfig DemoLnniConfig();

/// Registers the demo functions (lnni_infer + lnni_setup with
/// DemoLnniConfig()) into `registry`.  Idempotent per registry.
Status RegisterDemoFunctions(serde::FunctionRegistry& registry);

}  // namespace vinelet::apps
