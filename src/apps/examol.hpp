// ExaMol: the molecular-design application (paper §4.1.2), at laptop scale.
//
// Three function classes mirror the real application's task mix:
//  * examol_simulate — a PM7-style energy evaluation: iterative local
//    optimization of a synthetic molecular potential;
//  * examol_train — retrain the surrogate (ridge regression over completed
//    simulations, a scikit-learn stand-in);
//  * examol_infer — score candidate molecules with the surrogate and return
//    the most promising ones (the active-learning acquisition step).
//
// The shared context is a "basis set" table loaded from an input file; the
// setup function parses it once per library.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "serde/function_registry.hpp"

namespace vinelet::apps {

struct ExamolConfig {
  std::size_t feature_dim = 24;    // molecular descriptor dimension
  std::size_t basis_terms = 4096;  // size of the basis-set table
  std::size_t optimize_steps = 400;
  std::string basis_file = "basis_set.dat";
};

/// Deterministic synthetic basis-set blob.
Blob MakeBasisSetBlob(const ExamolConfig& config);

/// Retained context: parsed basis table.
class ExamolBasis final : public serde::FunctionContext {
 public:
  explicit ExamolBasis(std::vector<double> table) : table_(std::move(table)) {}
  std::uint64_t MemoryBytes() const override {
    return table_.size() * sizeof(double);
  }
  const std::vector<double>& table() const noexcept { return table_; }

 private:
  std::vector<double> table_;
};

/// Registers examol_simulate / examol_train / examol_infer and the
/// examol_setup context function.  Idempotent per registry.
///
/// examol_simulate args: {"molecule": int}
///   -> {"molecule": int, "energy": float}
/// examol_train args: {"results": [ {"molecule": int, "energy": float} ]}
///   -> {"weights": [float]}
/// examol_infer args: {"weights": [float], "pool_seed": int, "pool": int,
///                     "top_k": int}
///   -> {"candidates": [int]}  (lowest predicted ionization potential)
Status RegisterExamolFunctions(serde::FunctionRegistry& registry,
                               const ExamolConfig& config);

}  // namespace vinelet::apps
