// LNNI: the large-scale neural-network-inference application (paper §4.1.1),
// at laptop scale for the real runtime.
//
// The function split mirrors the paper's Fig 4: a context-setup function
// loads model weights from an input file and "builds the model" (an
// expensive deterministic transform), leaving a resident LnniModel; the
// inference function then scores n synthetic images against it.  Run
// without a retained context (L1/L2), the inference function must rebuild
// the model itself on every invocation — exactly the repeated work the
// paper's mechanisms remove.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "serde/function_registry.hpp"

namespace vinelet::apps {

struct LnniConfig {
  /// Model width: weights form a layers x dim x dim stack.
  std::size_t dim = 96;
  std::size_t layers = 4;
  /// Passes over the weights performed by the "model build" step; this is
  /// the per-invocation cost L3 hoists into the library.
  std::size_t build_passes = 12;
  std::uint64_t weights_seed = 0xC0FFEE;

  /// Name of the input file carrying the serialized weights.
  std::string weights_file = "resnet50.weights";
};

/// Serializes a deterministic synthetic weight blob for `config`.
Blob MakeLnniWeightsBlob(const LnniConfig& config);

/// The retained in-memory context: parsed + built model.
class LnniModel final : public serde::FunctionContext {
 public:
  LnniModel(std::vector<double> weights, std::size_t dim, std::size_t layers)
      : weights_(std::move(weights)), dim_(dim), layers_(layers) {}

  std::uint64_t MemoryBytes() const override {
    return weights_.size() * sizeof(double);
  }

  /// Runs one inference over a synthetic image; returns the argmax class.
  std::int64_t Infer(std::uint64_t image_key) const;

  std::size_t dim() const noexcept { return dim_; }

 private:
  std::vector<double> weights_;
  std::size_t dim_;
  std::size_t layers_;
};

/// Registers "lnni_infer" (function) and "lnni_setup" (context setup) in
/// `registry`.  Idempotent per registry (kAlreadyExists is swallowed).
///
/// lnni_infer args: {"count": int, "seed": int} -> {"classified": int,
/// "checksum": float, "rebuilt": bool}; `rebuilt` reports whether the
/// invocation had to reconstruct the model (true at L1/L2, false at L3).
Status RegisterLnniFunctions(serde::FunctionRegistry& registry,
                             const LnniConfig& config);

}  // namespace vinelet::apps
