// Small dense linear-algebra kernels used by the example applications.
//
// The evaluation applications do real numeric work (ResNet50 inference,
// PM7 chemistry, scikit-learn training); these kernels are their
// laptop-scale stand-ins — genuinely compute-bound, deterministic, and
// sized so the context-setup / execution split is measurable.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"

namespace vinelet::apps {

using Vec = std::vector<double>;

/// Dense row-major matrix.
struct Mat {
  std::size_t rows = 0;
  std::size_t cols = 0;
  Vec data;

  Mat() = default;
  Mat(std::size_t r, std::size_t c) : rows(r), cols(c), data(r * c, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data[r * cols + c]; }
  double at(std::size_t r, std::size_t c) const { return data[r * cols + c]; }
};

double Dot(const Vec& a, const Vec& b);

/// y = M x.
Vec MatVec(const Mat& m, const Vec& x);

/// Deterministic pseudo-random feature vector for an integer key.
Vec SyntheticFeatures(std::uint64_t key, std::size_t dim);

/// Solves (A^T A + lambda I) w = A^T y via Cholesky (ridge regression).
/// kFailedPrecondition if the system is not positive definite.
Result<Vec> RidgeSolve(const Mat& a, const Vec& y, double lambda);

/// In-place Cholesky solve of S w = b for symmetric positive-definite S.
Result<Vec> CholeskySolve(Mat s, Vec b);

}  // namespace vinelet::apps
