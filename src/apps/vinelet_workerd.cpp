// vinelet-workerd: one worker process of a multi-process vinelet cluster.
//
// Dials the hub (the vinelet-managerd process), registers its endpoint over
// TCP, and serves tasks, library installs, and invocations until it is told
// to stop — by SIGINT/SIGTERM, by the manager's Shutdown message (the
// Worker handles that internally), or by losing the hub connection.
//
//   $ ./vinelet-workerd --hub 127.0.0.1:7070 --id 1 [--cores N]
//                       [--memory-mb N] [--cache-bytes N]
//                       [--ref-min-bytes N] [--listen-port P]
//                       [--fault-seed N] [--fault-delay-p P]
//                       [--fault-delay-min-ms M] [--fault-delay-max-ms M]
//                       [--fault-dup-p P] [--partition-after S]
//
// The --fault-* flags install a net::FaultInjector on this process's
// transport, so delays and duplicates are applied at the real socket
// boundary (the moment bytes would be committed to the wire).
// --partition-after S symmetrically partitions this worker from the hub
// after S seconds — silence, not an error — which the cross-process soak
// pairs with a SIGKILL to exercise the manager's death recovery.
//
// The function registry is the shared demo registry (see demo_registry.hpp):
// every process of the deployment must register identical functions, or a
// worker would accept invocations it resolves differently.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "apps/demo_registry.hpp"
#include "core/worker.hpp"
#include "net/tcp_transport.hpp"

using namespace vinelet;

namespace {

std::atomic<bool> g_stop{false};
std::mutex g_mu;
std::condition_variable g_cv;

void HandleSignal(int) {
  g_stop.store(true);
  g_cv.notify_all();
}

bool ParseHostPort(const std::string& text, std::string& host,
                   std::uint16_t& port) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  host = text.substr(0, colon);
  const long parsed = std::atol(text.c_str() + colon + 1);
  if (parsed <= 0 || parsed > 65535) return false;
  port = static_cast<std::uint16_t>(parsed);
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --hub HOST:PORT --id N [--cores N] [--memory-mb N]"
               " [--cache-bytes N] [--ref-min-bytes N] [--listen-port P]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string hub_host;
  std::uint16_t hub_port = 0;
  core::WorkerConfig worker_config;
  worker_config.id = 0;
  worker_config.resources = core::Resources{4, 8 * 1024, 8 * 1024};
  std::uint16_t listen_port = 0;
  net::FaultPlan fault_plan;
  double partition_after_s = 0.0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--hub") == 0 && i + 1 < argc) {
      if (!ParseHostPort(argv[++i], hub_host, hub_port)) return Usage(argv[0]);
    } else if (std::strcmp(arg, "--id") == 0 && i + 1 < argc) {
      worker_config.id = static_cast<core::WorkerId>(std::atoll(argv[++i]));
    } else if (std::strcmp(arg, "--cores") == 0 && i + 1 < argc) {
      worker_config.resources.cores =
          static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(arg, "--memory-mb") == 0 && i + 1 < argc) {
      worker_config.resources.memory_mb =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(arg, "--cache-bytes") == 0 && i + 1 < argc) {
      worker_config.cache_capacity_bytes =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(arg, "--ref-min-bytes") == 0 && i + 1 < argc) {
      worker_config.ref_results_min_bytes =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(arg, "--listen-port") == 0 && i + 1 < argc) {
      listen_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(arg, "--fault-seed") == 0 && i + 1 < argc) {
      fault_plan.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(arg, "--fault-delay-p") == 0 && i + 1 < argc) {
      fault_plan.link.delay_p = std::atof(argv[++i]);
    } else if (std::strcmp(arg, "--fault-delay-min-ms") == 0 && i + 1 < argc) {
      fault_plan.link.delay_min_s = std::atof(argv[++i]) / 1000.0;
    } else if (std::strcmp(arg, "--fault-delay-max-ms") == 0 && i + 1 < argc) {
      fault_plan.link.delay_max_s = std::atof(argv[++i]) / 1000.0;
    } else if (std::strcmp(arg, "--fault-dup-p") == 0 && i + 1 < argc) {
      fault_plan.link.dup_p = std::atof(argv[++i]);
    } else if (std::strcmp(arg, "--partition-after") == 0 && i + 1 < argc) {
      partition_after_s = std::atof(argv[++i]);
    } else {
      return Usage(argv[0]);
    }
  }
  if (hub_host.empty() || worker_config.id == 0) return Usage(argv[0]);

  serde::FunctionRegistry registry;
  if (Status status = apps::RegisterDemoFunctions(registry); !status.ok()) {
    std::fprintf(stderr, "register failed: %s\n", status.ToString().c_str());
    return 1;
  }
  worker_config.registry = &registry;

  net::TcpTransportConfig net_config;
  net_config.listen_port = listen_port;
  net_config.hub_host = hub_host;
  net_config.hub_port = hub_port;
  auto transport = std::make_shared<net::TcpTransport>(net_config);
  if (Status status = transport->Start(); !status.ok()) {
    std::fprintf(stderr, "transport start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::shared_ptr<net::FaultInjector> injector;
  if (!fault_plan.Quiet() || partition_after_s > 0.0) {
    injector = std::make_shared<net::FaultInjector>(fault_plan);
    transport->SetFaultInjector(injector);
  }

  // Exit when the hub goes away: with the hub link down this worker cannot
  // receive work or report results, so lingering only hides failures.
  transport->SetDisconnectListener([](net::EndpointId id) {
    if (id == net::kManagerEndpoint) {
      std::fprintf(stderr, "vinelet-workerd: hub connection lost\n");
      g_stop.store(true);
      g_cv.notify_all();
    }
  });

  core::Worker worker(transport, worker_config);
  if (Status status = worker.Start(); !status.ok()) {
    std::fprintf(stderr, "worker start failed: %s\n",
                 status.ToString().c_str());
    transport->Shutdown();
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::printf("vinelet-workerd: worker %llu up (hub %s:%u, listening on %u)\n",
              static_cast<unsigned long long>(worker_config.id),
              hub_host.c_str(), hub_port, transport->listen_port());
  std::fflush(stdout);

  std::thread partition_timer;
  if (partition_after_s > 0.0 && injector != nullptr) {
    partition_timer = std::thread([&] {
      std::unique_lock<std::mutex> lock(g_mu);
      g_cv.wait_for(lock,
                    std::chrono::duration<double>(partition_after_s),
                    [] { return g_stop.load(); });
      if (g_stop.load()) return;
      injector->Partition(worker_config.id, net::kManagerEndpoint, true);
      std::fprintf(stderr, "vinelet-workerd: partitioned from hub\n");
    });
  }

  {
    std::unique_lock<std::mutex> lock(g_mu);
    g_cv.wait(lock, [] { return g_stop.load(); });
  }
  if (partition_timer.joinable()) partition_timer.join();

  // Teardown order matters: stop the worker (joins its inbox loop and task
  // threads, sends Goodbye) while the transport is still up, then shut the
  // transport down (joins the event loop).
  worker.Stop();
  transport->SetDisconnectListener(nullptr);
  transport->Shutdown();
  std::printf("vinelet-workerd: worker %llu stopped (%llu task(s) executed)\n",
              static_cast<unsigned long long>(worker_config.id),
              static_cast<unsigned long long>(worker.tasks_executed()));
  return 0;
}
