#include "apps/demo_registry.hpp"

namespace vinelet::apps {

LnniConfig DemoLnniConfig() {
  LnniConfig config;
  config.dim = 48;
  config.layers = 3;
  config.build_passes = 16;
  return config;
}

Status RegisterDemoFunctions(serde::FunctionRegistry& registry) {
  return RegisterLnniFunctions(registry, DemoLnniConfig());
}

}  // namespace vinelet::apps
