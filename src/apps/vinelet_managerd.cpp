// vinelet-managerd: the manager process of a multi-process vinelet cluster.
//
// Listens as the TCP hub, waits for --workers vinelet-workerd processes to
// join, drives the shared LNNI demo workload through them (weights
// broadcast, library install, --invocations library calls), prints the
// drained cluster status — including per-connection transport counters —
// and exits.  The exit code is the deployment smoke gate: 0 only when every
// worker joined, every invocation completed, and the final status is clean.
//
//   $ ./vinelet-managerd [--port P] [--workers N] [--min-workers N]
//                        [--invocations N] [--count N] [--json] [--timeout S]
//
// Pair with vinelet-workerd:
//   $ ./vinelet-managerd --port 7070 --workers 2 &
//   $ ./vinelet-workerd --hub 127.0.0.1:7070 --id 1 &
//   $ ./vinelet-workerd --hub 127.0.0.1:7070 --id 2 &
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/demo_registry.hpp"
#include "core/manager.hpp"
#include "net/tcp_transport.hpp"
#include "poncho/analyzer.hpp"

using namespace vinelet;
using serde::Value;

int main(int argc, char** argv) {
  std::uint16_t port = 7070;
  std::size_t workers = 2;
  std::size_t min_workers = 0;  // 0 = require all of --workers at the end
  int invocations = 48;
  int count = 8;  // inferences per invocation — the per-call work knob
  bool json = false;
  double timeout_s = 60.0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--port") == 0 && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(arg, "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(arg, "--min-workers") == 0 && i + 1 < argc) {
      min_workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(arg, "--invocations") == 0 && i + 1 < argc) {
      invocations = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--count") == 0 && i + 1 < argc) {
      count = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--timeout") == 0 && i + 1 < argc) {
      timeout_s = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port P] [--workers N] [--min-workers N]"
                   " [--invocations N] [--count N] [--json] [--timeout S]\n",
                   argv[0]);
      return 2;
    }
  }

  serde::FunctionRegistry registry;
  if (Status status = apps::RegisterDemoFunctions(registry); !status.ok()) {
    std::fprintf(stderr, "register failed: %s\n", status.ToString().c_str());
    return 1;
  }

  net::TcpTransportConfig net_config;
  net_config.listen_port = port;
  auto transport = std::make_shared<net::TcpTransport>(net_config);
  if (Status status = transport->Start(); !status.ok()) {
    std::fprintf(stderr, "transport start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  core::ManagerConfig manager_config;
  manager_config.registry = &registry;
  core::Manager manager(transport, manager_config);
  if (Status status = manager.Start(); !status.ok()) {
    std::fprintf(stderr, "manager start failed: %s\n",
                 status.ToString().c_str());
    transport->Shutdown();
    return 1;
  }
  std::printf("vinelet-managerd: hub on port %u, waiting for %zu worker(s)\n",
              transport->listen_port(), workers);
  std::fflush(stdout);
  if (Status status = manager.WaitForWorkers(workers, timeout_s);
      !status.ok()) {
    std::fprintf(stderr, "workers never joined: %s\n",
                 status.ToString().c_str());
    manager.Stop();
    transport->Shutdown();
    return 1;
  }

  // The demo workload: broadcast the model weights, install the LNNI
  // library on the cluster, fan the invocations out, and drain.
  const apps::LnniConfig lnni = apps::DemoLnniConfig();
  poncho::Analyzer analyzer(poncho::PackageCatalog::SyntheticMlCatalog(0.005));
  auto env = analyzer.AnalyzeImports({"ml-inference"});
  if (!env.ok()) {
    std::fprintf(stderr, "env analysis failed: %s\n",
                 env.status().ToString().c_str());
    return 1;
  }
  auto env_decl = manager.DeclareBlob("env", env->tarball,
                                      storage::FileKind::kEnvironment,
                                      /*cache=*/true, /*peer_transfer=*/true,
                                      /*unpack=*/true);
  auto weights_decl =
      manager.DeclareBlob(lnni.weights_file, apps::MakeLnniWeightsBlob(lnni),
                          storage::FileKind::kData, /*cache=*/true);
  (void)manager.BroadcastFile(weights_decl);
  auto spec = manager.CreateLibraryFromFunctions("lnni", {"lnni_infer"},
                                                 "lnni_setup", Value());
  if (!spec.ok()) {
    std::fprintf(stderr, "library spec failed: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }
  manager.AddLibraryInput(*spec, env_decl);
  manager.AddLibraryInput(*spec, weights_decl);
  spec->slots = 4;
  if (Status status = manager.InstallLibrary(*spec); !status.ok()) {
    std::fprintf(stderr, "install failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::vector<core::FuturePtr> futures;
  futures.reserve(static_cast<std::size_t>(invocations));
  for (int i = 0; i < invocations; ++i) {
    futures.push_back(manager.SubmitCall(
        "lnni", "lnni_infer",
        Value::Dict({{"count", Value(count)}, {"seed", Value(i)}})));
  }
  if (Status status = manager.WaitAll(timeout_s); !status.ok()) {
    std::fprintf(stderr, "workload did not drain: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  int failed = 0;
  for (const auto& future : futures) {
    auto outcome = future->Wait();
    if (!outcome.ok()) {
      ++failed;
      std::fprintf(stderr, "invocation failed: %s\n",
                   outcome.status().ToString().c_str());
    }
  }

  auto status = manager.QueryStatus(timeout_s);
  if (!status.ok()) {
    std::fprintf(stderr, "status query failed: %s\n",
                 status.status().ToString().c_str());
    return 1;
  }
  if (json) {
    std::printf("%s\n", core::ClusterStatusToJson(*status).c_str());
  } else {
    std::printf("%s", core::FormatClusterStatus(*status).c_str());
  }
  // Chaos soaks kill workers mid-run on purpose; --min-workers relaxes the
  // attrition check while still requiring every invocation to complete.
  const std::size_t required = min_workers == 0 ? workers : min_workers;
  const bool healthy = failed == 0 && status->workers.size() >= required &&
                       !core::AnyStraggler(*status);

  // Stop() broadcasts Shutdown to the workers, so well-behaved workerds
  // exit on their own; the transport teardown then closes the sockets.
  manager.Stop();
  transport->Shutdown();
  if (!healthy) {
    std::fprintf(stderr,
                 "vinelet-managerd: unhealthy (failed=%d workers=%zu/%zu)\n",
                 failed, status->workers.size(), required);
    return 3;
  }
  std::printf("vinelet-managerd: clean shutdown (%d invocation(s) ok)\n",
              invocations);
  return 0;
}
