// vinelet-status: live cluster introspection from the command line.
//
// Spins up an in-process demo cluster (manager + workers), drives a small
// LNNI workload through it, and renders Manager::QueryStatus — either twice
// (mid-flight and drained, the default) or continuously with --follow — in
// the human-readable format or as JSON.  The exit code reflects cluster
// health: 0 when the drained status is clean, 3 when any worker carries the
// straggler flag or any library's SLO is breached, so scripts can gate on
// it directly.
//
//   $ ./vinelet-status [--json] [--follow SECONDS] [--workers N]
//                      [--invocations N] [--slo-latency S]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "apps/lnni.hpp"
#include "core/factory.hpp"
#include "core/manager.hpp"
#include "poncho/analyzer.hpp"

using namespace vinelet;
using serde::Value;

namespace {

void PrintStatus(const core::ClusterStatus& status, bool json) {
  if (json) {
    std::printf("%s\n", core::ClusterStatusToJson(status).c_str());
  } else {
    std::printf("%s", core::FormatClusterStatus(status).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  double follow_s = 0.0;
  std::size_t workers = 3;
  int invocations = 48;
  double slo_latency_s = 0.5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--follow") == 0 && i + 1 < argc) {
      follow_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--invocations") == 0 && i + 1 < argc) {
      invocations = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--slo-latency") == 0 && i + 1 < argc) {
      slo_latency_s = std::atof(argv[++i]);
    } else {
      std::printf(
          "usage: %s [--json] [--follow SECONDS] [--workers N]"
          " [--invocations N] [--slo-latency S]\n",
          argv[0]);
      return 2;
    }
  }

  serde::FunctionRegistry registry;
  apps::LnniConfig lnni;
  lnni.dim = 48;
  lnni.layers = 3;
  lnni.build_passes = 16;
  if (Status status = apps::RegisterLnniFunctions(registry, lnni);
      !status.ok()) {
    std::printf("register failed: %s\n", status.ToString().c_str());
    return 1;
  }

  auto network = std::make_shared<net::Network>();
  core::ManagerConfig manager_config;
  manager_config.registry = &registry;
  if (slo_latency_s > 0.0) {
    telemetry::SloTarget target;
    target.library = "lnni";
    target.latency_target_s = slo_latency_s;
    target.target_fraction = 0.95;
    target.window_s = 60.0;
    manager_config.slo.targets.push_back(target);
  }
  core::Manager manager(network, manager_config);
  (void)manager.Start();
  core::FactoryConfig factory_config;
  factory_config.initial_workers = workers;
  factory_config.registry = &registry;
  factory_config.telemetry = &manager.telemetry();
  core::Factory factory(network, factory_config);
  (void)factory.Start();
  (void)manager.WaitForWorkers(workers, 30.0);

  // Seed the cluster: broadcast the weights, install the library, submit.
  poncho::Analyzer analyzer(poncho::PackageCatalog::SyntheticMlCatalog(0.005));
  auto env = analyzer.AnalyzeImports({"ml-inference"}).value();
  auto env_decl = manager.DeclareBlob("env", env.tarball,
                                      storage::FileKind::kEnvironment,
                                      /*cache=*/true, /*peer_transfer=*/true,
                                      /*unpack=*/true);
  auto weights_decl =
      manager.DeclareBlob(lnni.weights_file, apps::MakeLnniWeightsBlob(lnni),
                          storage::FileKind::kData, /*cache=*/true);
  (void)manager.BroadcastFile(weights_decl);

  auto spec = manager.CreateLibraryFromFunctions("lnni", {"lnni_infer"},
                                                 "lnni_setup", Value());
  manager.AddLibraryInput(*spec, env_decl);
  manager.AddLibraryInput(*spec, weights_decl);
  spec->slots = 4;
  (void)manager.InstallLibrary(*spec);
  for (int i = 0; i < invocations; ++i) {
    (void)manager.SubmitCall(
        "lnni", "lnni_infer",
        Value::Dict({{"count", Value(8)}, {"seed", Value(i)}}));
  }

  if (follow_s > 0.0) {
    // Live refresh loop: redraw until the workload drains.
    while (true) {
      auto status = manager.QueryStatus();
      if (!status.ok()) {
        std::printf("status query failed: %s\n",
                    status.status().ToString().c_str());
        return 1;
      }
      if (!json) std::printf("\x1b[2J\x1b[H");
      PrintStatus(*status, json);
      std::fflush(stdout);
      if (manager.WaitAll(0.0).ok()) break;
      std::this_thread::sleep_for(std::chrono::duration<double>(follow_s));
    }
  } else {
    // Mid-flight snapshot: queues, deploying libraries, broadcast progress.
    // JSON mode emits exactly one document (the drained snapshot below) so
    // the output always parses as a single object.
    if (!json) {
      auto midflight = manager.QueryStatus();
      if (!midflight.ok()) {
        std::printf("status query failed: %s\n",
                    midflight.status().ToString().c_str());
        return 1;
      }
      std::printf("=== mid-flight ===\n");
      PrintStatus(*midflight, json);
    }
    (void)manager.WaitAll(120.0);
  }

  auto drained = manager.QueryStatus();
  if (!drained.ok()) {
    std::printf("status query failed: %s\n",
                drained.status().ToString().c_str());
    return 1;
  }
  if (!json) std::printf("\n=== drained ===\n");
  PrintStatus(*drained, json);

  const bool unhealthy =
      core::AnyStraggler(*drained) || core::AnySloBreach(*drained);
  if (unhealthy && !json)
    std::printf("\ncluster unhealthy: straggler or SLO breach flagged\n");

  manager.Stop();
  factory.Stop();
  return unhealthy ? 3 : 0;
}
