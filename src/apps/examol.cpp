#include "apps/examol.hpp"

#include <algorithm>
#include <cmath>

#include "apps/numeric.hpp"
#include "serde/archive.hpp"

namespace vinelet::apps {
namespace {

Result<std::vector<double>> ParseBasis(const Blob& blob,
                                       const ExamolConfig& config) {
  serde::ArchiveReader reader(blob);
  auto magic = reader.ReadString();
  if (!magic.ok()) return magic.status();
  if (*magic != "EXBAS1") return DataLossError("bad basis-set magic");
  auto count = reader.ReadU64();
  if (!count.ok()) return count.status();
  if (*count != config.basis_terms)
    return DataLossError("basis-set size mismatch");
  std::vector<double> table;
  table.reserve(config.basis_terms);
  for (std::size_t i = 0; i < config.basis_terms; ++i) {
    auto v = reader.ReadF64();
    if (!v.ok()) return v.status();
    table.push_back(*v);
  }
  return table;
}

const ExamolBasis* BasisFrom(const serde::InvocationEnv& env) {
  return dynamic_cast<const ExamolBasis*>(env.context);
}

}  // namespace

Blob MakeBasisSetBlob(const ExamolConfig& config) {
  const Vec values = SyntheticFeatures(0xBA515, config.basis_terms);
  serde::ArchiveWriter writer;
  writer.WriteString("EXBAS1");
  writer.WriteU64(config.basis_terms);
  for (double v : values) writer.WriteF64(v);
  return std::move(writer).ToBlob();
}

Status RegisterExamolFunctions(serde::FunctionRegistry& registry,
                               const ExamolConfig& config) {
  auto tolerate_exists = [](Status status) {
    if (!status.ok() && status.code() != ErrorCode::kAlreadyExists)
      return status;
    return Status::Ok();
  };

  // --- context setup --------------------------------------------------
  serde::ContextSetupDef setup;
  setup.name = "examol_setup";
  setup.imports = {"chem-design"};
  setup.fn = [config](const serde::Value&, const serde::InvocationEnv& env)
      -> Result<serde::ContextHandle> {
    if (!env.HasFile(config.basis_file))
      return NotFoundError("basis file not staged: " + config.basis_file);
    auto table = ParseBasis(env.File(config.basis_file), config);
    if (!table.ok()) return table.status();
    return serde::ContextHandle(
        std::make_shared<ExamolBasis>(std::move(*table)));
  };
  VINELET_RETURN_IF_ERROR(tolerate_exists(registry.RegisterSetup(setup)));

  // Helper shared by all three functions: retained basis or rebuilt local.
  auto get_basis =
      [config](const serde::InvocationEnv& env)
      -> Result<std::shared_ptr<const std::vector<double>>> {
    if (const ExamolBasis* ctx = BasisFrom(env)) {
      // Borrow the retained table without copying.
      return std::shared_ptr<const std::vector<double>>(
          std::shared_ptr<void>(), &ctx->table());
    }
    if (!env.HasFile(config.basis_file))
      return NotFoundError("basis file not staged: " + config.basis_file);
    auto table = ParseBasis(env.File(config.basis_file), config);
    if (!table.ok()) return table.status();
    return std::make_shared<const std::vector<double>>(std::move(*table));
  };

  // --- simulate ----------------------------------------------------------
  serde::FunctionDef simulate;
  simulate.name = "examol_simulate";
  simulate.setup_name = "examol_setup";
  simulate.imports = {"chem-design"};
  simulate.fn = [config, get_basis](
                    const serde::Value& args,
                    const serde::InvocationEnv& env) -> Result<serde::Value> {
    auto molecule = args.GetInt("molecule");
    if (!molecule.ok()) return molecule.status();
    auto basis = get_basis(env);
    if (!basis.ok()) return basis.status();

    // PM7 stand-in: relax the molecule's descriptor on a potential surface
    // parameterized by the basis table (per-dimension, shared by all
    // molecules — the surface is smooth in the descriptor, so an ML
    // surrogate can genuinely learn it), then report the energy.  The
    // dominant linear term keeps the landscape rank-learnable while the
    // sinusoidal part makes relaxation non-trivial.
    const auto key = static_cast<std::uint64_t>(*molecule);
    Vec point = SyntheticFeatures(key, config.feature_dim);
    double energy = 0.0;
    for (std::size_t step = 0; step < config.optimize_steps; ++step) {
      energy = 0.0;
      for (std::size_t i = 0; i < config.feature_dim; ++i) {
        const double b = (**basis)[i % (*basis)->size()];
        const double grad = 0.8 * b + 0.6 * std::cos(point[i] * 2.0 + b);
        point[i] -= 0.002 * grad;
        energy += 0.8 * point[i] * b + 0.3 * std::sin(point[i] * 2.0 + b);
      }
    }
    serde::ValueDict out;
    out["molecule"] = serde::Value(*molecule);
    out["energy"] = serde::Value(energy);
    return serde::Value(std::move(out));
  };
  VINELET_RETURN_IF_ERROR(tolerate_exists(registry.RegisterFunction(simulate)));

  // --- train ---------------------------------------------------------------
  serde::FunctionDef train;
  train.name = "examol_train";
  train.setup_name = "examol_setup";
  train.imports = {"chem-design"};
  train.fn = [config](const serde::Value& args,
                      const serde::InvocationEnv&) -> Result<serde::Value> {
    const serde::Value& results = args.Get("results");
    if (results.type() != serde::Value::Type::kList)
      return InvalidArgumentError("train: 'results' must be a list");
    const auto& list = results.AsList();
    if (list.size() < config.feature_dim)
      return FailedPreconditionError("train: need at least " +
                                     std::to_string(config.feature_dim) +
                                     " samples");
    Mat features(list.size(), config.feature_dim);
    Vec targets(list.size());
    for (std::size_t r = 0; r < list.size(); ++r) {
      auto molecule = list[r].GetInt("molecule");
      if (!molecule.ok()) return molecule.status();
      auto energy = list[r].GetNumber("energy");
      if (!energy.ok()) return energy.status();
      const Vec row = SyntheticFeatures(
          static_cast<std::uint64_t>(*molecule), config.feature_dim);
      for (std::size_t c = 0; c < config.feature_dim; ++c)
        features.at(r, c) = row[c];
      targets[r] = *energy;
    }
    auto weights = RidgeSolve(features, targets, 1e-3);
    if (!weights.ok()) return weights.status();
    serde::ValueList encoded;
    encoded.reserve(weights->size());
    for (double w : *weights) encoded.emplace_back(w);
    serde::ValueDict out;
    out["weights"] = serde::Value(std::move(encoded));
    return serde::Value(std::move(out));
  };
  VINELET_RETURN_IF_ERROR(tolerate_exists(registry.RegisterFunction(train)));

  // --- infer ---------------------------------------------------------------
  serde::FunctionDef infer;
  infer.name = "examol_infer";
  infer.setup_name = "examol_setup";
  infer.imports = {"chem-design"};
  infer.fn = [config](const serde::Value& args,
                      const serde::InvocationEnv&) -> Result<serde::Value> {
    const serde::Value& weights_value = args.Get("weights");
    if (weights_value.type() != serde::Value::Type::kList)
      return InvalidArgumentError("infer: 'weights' must be a list");
    auto pool_seed = args.GetInt("pool_seed");
    if (!pool_seed.ok()) return pool_seed.status();
    auto pool = args.GetInt("pool");
    if (!pool.ok()) return pool.status();
    auto top_k = args.GetInt("top_k");
    if (!top_k.ok()) return top_k.status();

    Vec weights;
    weights.reserve(weights_value.AsList().size());
    for (const auto& w : weights_value.AsList()) weights.push_back(w.AsNumber());

    // Score the candidate pool; keep the lowest predicted energies.
    std::vector<std::pair<double, std::int64_t>> scored;
    scored.reserve(static_cast<std::size_t>(*pool));
    for (std::int64_t i = 0; i < *pool; ++i) {
      const std::int64_t molecule = *pool_seed + i;
      const Vec features = SyntheticFeatures(
          static_cast<std::uint64_t>(molecule), config.feature_dim);
      scored.emplace_back(Dot(weights, features), molecule);
    }
    const std::size_t keep =
        std::min<std::size_t>(static_cast<std::size_t>(*top_k), scored.size());
    std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(keep),
                      scored.end());
    serde::ValueList candidates;
    for (std::size_t i = 0; i < keep; ++i)
      candidates.emplace_back(scored[i].second);
    serde::ValueDict out;
    out["candidates"] = serde::Value(std::move(candidates));
    return serde::Value(std::move(out));
  };
  VINELET_RETURN_IF_ERROR(tolerate_exists(registry.RegisterFunction(infer)));

  return Status::Ok();
}

}  // namespace vinelet::apps
