// Consistent hash ring over worker ids.
//
// The manager "sequentially checks a hash ring of connected workers"
// (paper §3.5.2) when placing a library.  The ring gives two properties the
// scheduler relies on: (1) a stable starting worker per function so repeated
// scheduling of the same function clusters its libraries, and (2) minimal
// reshuffling when workers join or leave mid-run.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vinelet::hash {

class HashRing {
 public:
  /// `vnodes` virtual nodes per member smooth the key distribution.
  explicit HashRing(unsigned vnodes = 32) : vnodes_(vnodes) {}

  /// Adds a member; no-op if already present.
  void Add(std::uint64_t member_id);

  /// Removes a member; no-op if absent.
  void Remove(std::uint64_t member_id);

  bool Contains(std::uint64_t member_id) const;
  std::size_t size() const noexcept { return members_.size(); }
  bool empty() const noexcept { return members_.empty(); }

  /// The member owning `key`, or nullopt when the ring is empty.
  std::optional<std::uint64_t> Owner(std::uint64_t key) const;
  std::optional<std::uint64_t> Owner(const std::string& key) const;

  /// Members in ring order starting at the owner of `key`, deduplicated —
  /// the scheduler walks this sequence looking for a worker with capacity.
  std::vector<std::uint64_t> WalkFrom(std::uint64_t key) const;

  /// All member ids, sorted.
  std::vector<std::uint64_t> Members() const;

 private:
  static std::uint64_t Mix(std::uint64_t member_id, unsigned replica);

  unsigned vnodes_;
  std::map<std::uint64_t, std::uint64_t> ring_;  // point -> member
  std::map<std::uint64_t, unsigned> members_;    // member -> vnode count
};

}  // namespace vinelet::hash
