// Hardware SHA-256 block kernels with runtime detection.
//
// x86-64: the SHA extensions (SHA-NI) compress a block in ~3 instruction
// groups per 4 rounds; the kernel is compiled with a per-function target
// attribute so the rest of the binary stays baseline-ISA, and CPUID gates
// it at runtime (leaf 7 EBX bit 29, plus the SSSE3/SSE4.1 shuffles the
// glue code uses).
//
// AArch64: the ARMv8 cryptography extensions expose the same per-block
// schedule (SHA256H/SHA256H2/SHA256SU0/SHA256SU1); that path compiles only
// when the toolchain baseline already enables __ARM_FEATURE_CRYPTO, so no
// runtime probe beyond the compile-time gate is needed.
//
// Everything else falls back to nullptr and the portable scalar kernel.
#include "hash/sha256_block.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#include <immintrin.h>
#endif
#if defined(__aarch64__) && defined(__ARM_FEATURE_CRYPTO)
#include <arm_neon.h>
#endif

namespace vinelet::hash::detail {
namespace {

// Same FIPS 180-4 round constants as the scalar kernel, kept local so the
// SIMD loads stay in this translation unit.
alignas(16) constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

#if defined(__x86_64__) || defined(__i386__)

__attribute__((target("sha,sse4.1,ssse3"))) void ProcessBlocksShaNi(
    std::uint32_t* state, const std::uint8_t* blocks,
    std::size_t count) noexcept {
  // Byte shuffle turning each big-endian message word little-endian per lane.
  const __m128i kFlip =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // SHA-NI wants the state as two packed registers ABEF / CDGH.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);  // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);       // CDGH

  for (; count > 0; --count, blocks += 64) {
    const __m128i save0 = state0;
    const __m128i save1 = state1;

    // Ring of the last four message-schedule vectors: for group g ≥ 4,
    // W[g] = msg2(msg1(W[g-4], W[g-3]) + alignr(W[g-1], W[g-2], 4), W[g-1]).
    __m128i m[4];
    for (int g = 0; g < 16; ++g) {
      __m128i w;
      if (g < 4) {
        w = _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(
                                 blocks + 16 * g)),
                             kFlip);
      } else {
        const __m128i t = _mm_alignr_epi8(m[(g + 3) & 3], m[(g + 2) & 3], 4);
        w = _mm_sha256msg1_epu32(m[g & 3], m[(g + 1) & 3]);
        w = _mm_add_epi32(w, t);
        w = _mm_sha256msg2_epu32(w, m[(g + 3) & 3]);
      }
      m[g & 3] = w;

      __m128i msg = _mm_add_epi32(
          w, _mm_load_si128(reinterpret_cast<const __m128i*>(kK + 4 * g)));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    }

    state0 = _mm_add_epi32(state0, save0);
    state1 = _mm_add_epi32(state1, save1);
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);        // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);     // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), state1);
}

bool CpuHasShaNi() noexcept {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  if ((ebx & (1u << 29)) == 0) return false;  // SHA extensions
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  const bool ssse3 = (ecx & (1u << 9)) != 0;
  const bool sse41 = (ecx & (1u << 19)) != 0;
  return ssse3 && sse41;
}

#endif  // x86

#if defined(__aarch64__) && defined(__ARM_FEATURE_CRYPTO)

void ProcessBlocksArmv8(std::uint32_t* state, const std::uint8_t* blocks,
                        std::size_t count) noexcept {
  uint32x4_t state0 = vld1q_u32(state);
  uint32x4_t state1 = vld1q_u32(state + 4);

  for (; count > 0; --count, blocks += 64) {
    const uint32x4_t save0 = state0;
    const uint32x4_t save1 = state1;

    uint32x4_t m[4];
    for (int g = 0; g < 16; ++g) {
      uint32x4_t w;
      if (g < 4) {
        w = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(blocks + 16 * g)));
      } else {
        w = vsha256su1q_u32(vsha256su0q_u32(m[g & 3], m[(g + 1) & 3]),
                            m[(g + 2) & 3], m[(g + 3) & 3]);
      }
      m[g & 3] = w;

      const uint32x4_t wk = vaddq_u32(w, vld1q_u32(kK + 4 * g));
      const uint32x4_t prev0 = state0;
      state0 = vsha256hq_u32(state0, state1, wk);
      state1 = vsha256h2q_u32(state1, prev0, wk);
    }

    state0 = vaddq_u32(state0, save0);
    state1 = vaddq_u32(state1, save1);
  }

  vst1q_u32(state, state0);
  vst1q_u32(state + 4, state1);
}

#endif  // aarch64 + crypto

}  // namespace

BlockFn DetectAcceleratedBlockFn() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  if (CpuHasShaNi()) return &ProcessBlocksShaNi;
#endif
#if defined(__aarch64__) && defined(__ARM_FEATURE_CRYPTO)
  return &ProcessBlocksArmv8;
#endif
  return nullptr;
}

const char* AcceleratedBackendName() noexcept {
#if defined(__aarch64__) && defined(__ARM_FEATURE_CRYPTO)
  return "armv8-crypto";
#else
  return "sha-ni";
#endif
}

}  // namespace vinelet::hash::detail
