// Internal seam between the Sha256 driver (buffering, padding) and the
// block-compression kernels.  Not part of the public hash API.
//
// The driver calls through a function pointer chosen once per process:
// a hardware kernel (SHA-NI on x86, the crypto extensions on ARMv8) when the
// CPU supports one, the portable scalar kernel otherwise.  All kernels
// consume whole 64-byte blocks and advance the same FIPS 180-4 state, so
// they are interchangeable mid-stream — which is exactly what the
// force-scalar test hook relies on.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vinelet::hash::detail {

/// Compresses `count` consecutive 64-byte blocks into `state` (8 words,
/// host order).
using BlockFn = void (*)(std::uint32_t* state, const std::uint8_t* blocks,
                         std::size_t count) noexcept;

/// Portable FIPS 180-4 kernel; always available.
void ProcessBlocksScalar(std::uint32_t* state, const std::uint8_t* blocks,
                         std::size_t count) noexcept;

/// The hardware kernel for this CPU, or nullptr when none is supported.
/// Detection runs on the calling thread; the result never changes, so
/// callers may cache it.
BlockFn DetectAcceleratedBlockFn() noexcept;

/// Name of the kernel DetectAcceleratedBlockFn() returns ("sha-ni" /
/// "armv8-crypto"); meaningless when detection returned nullptr.
const char* AcceleratedBackendName() noexcept;

}  // namespace vinelet::hash::detail
