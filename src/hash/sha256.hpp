// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Content addressing is load-bearing in vinelet: the distribution mechanism
// requires every transferable file to be "uniquely identified and read-only"
// (paper §2.2.2), and caches key blobs by the hash of their contents so that
// identical environments submitted by different functions deduplicate.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace vinelet::hash {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() { Reset(); }

  void Reset() noexcept;
  void Update(std::span<const std::uint8_t> data) noexcept;
  void Update(std::string_view text) noexcept {
    Update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  }

  /// Finalizes and returns the digest.  The hasher must be Reset() before
  /// further use.
  Digest Finish() noexcept;

  /// One-shot convenience.
  static Digest Hash(std::span<const std::uint8_t> data) noexcept;
  static Digest Hash(std::string_view text) noexcept;

  /// Lowercase hex encoding of a digest.
  static std::string ToHex(const Digest& digest);

  /// Name of the block-compression backend the next hash will use:
  /// "sha-ni", "armv8-crypto", or "scalar".  Hardware paths are detected at
  /// runtime (CPUID on x86); setting VINELET_SHA256_FORCE_SCALAR=1 in the
  /// environment pins the portable path for the whole process.
  static const char* Backend() noexcept;

  /// Test hook: pin (or unpin) the scalar path at runtime so both sides of
  /// the dispatch seam can be exercised in one process.
  static void ForceScalarForTest(bool force) noexcept;

 private:
  void ProcessBlocks(const std::uint8_t* blocks, std::size_t count) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace vinelet::hash
