#include "hash/sha256.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "hash/sha256_block.hpp"

namespace vinelet::hash {
namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

inline std::uint32_t Rotr(std::uint32_t x, int n) noexcept {
  return (x >> n) | (x << (32 - n));
}

std::atomic<bool> g_force_scalar{false};

struct Dispatch {
  detail::BlockFn fn;  // nullptr when the scalar path is the best we have
  const char* name;
};

// Detection runs once (magic static); the env override is part of detection
// so production code can pin the portable path without recompiling.
const Dispatch& Detected() noexcept {
  static const Dispatch d = [] {
    if (const char* env = std::getenv("VINELET_SHA256_FORCE_SCALAR");
        env != nullptr && env[0] == '1') {
      return Dispatch{nullptr, "scalar"};
    }
    if (detail::BlockFn fn = detail::DetectAcceleratedBlockFn()) {
      return Dispatch{fn, detail::AcceleratedBackendName()};
    }
    return Dispatch{nullptr, "scalar"};
  }();
  return d;
}

}  // namespace

namespace detail {

void ProcessBlocksScalar(std::uint32_t* state, const std::uint8_t* blocks,
                         std::size_t count) noexcept {
  for (; count > 0; --count, blocks += 64) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(blocks[4 * i]) << 24) |
             (static_cast<std::uint32_t>(blocks[4 * i + 1]) << 16) |
             (static_cast<std::uint32_t>(blocks[4 * i + 2]) << 8) |
             static_cast<std::uint32_t>(blocks[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
      const std::uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

}  // namespace detail

const char* Sha256::Backend() noexcept {
  if (g_force_scalar.load(std::memory_order_relaxed)) return "scalar";
  return Detected().name;
}

void Sha256::ForceScalarForTest(bool force) noexcept {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

void Sha256::Reset() noexcept {
  state_ = kInitialState;
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha256::ProcessBlocks(const std::uint8_t* blocks,
                           std::size_t count) noexcept {
  if (!g_force_scalar.load(std::memory_order_relaxed)) {
    if (detail::BlockFn fn = Detected().fn) {
      fn(state_.data(), blocks, count);
      return;
    }
  }
  detail::ProcessBlocksScalar(state_.data(), blocks, count);
}

void Sha256::Update(std::span<const std::uint8_t> data) noexcept {
  total_len_ += data.size();
  std::size_t offset = 0;
  // Fill a partially-buffered block first.
  if (buffer_len_ != 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 64) {
      ProcessBlocks(buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
  // Compress every whole block left in the input in one kernel call: the
  // hardware paths amortize their state load/store across the run.
  if (const std::size_t whole = (data.size() - offset) / 64; whole > 0) {
    ProcessBlocks(data.data() + offset, whole);
    offset += whole * 64;
  }
  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffer_len_);
  }
}

Sha256::Digest Sha256::Finish() noexcept {
  // Padding: 0x80, zeros, 64-bit big-endian bit length.
  const std::uint64_t bit_len = total_len_ * 8;
  std::uint8_t pad[72];
  std::size_t pad_len = 0;
  pad[pad_len++] = 0x80;
  const std::size_t rem = (buffer_len_ + 1) % 64;
  const std::size_t zeros = (rem <= 56) ? (56 - rem) : (120 - rem);
  std::memset(pad + pad_len, 0, zeros);
  pad_len += zeros;
  for (int i = 7; i >= 0; --i) {
    pad[pad_len++] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  }
  // Update without re-counting the padding bytes in total_len_.
  const std::uint64_t saved = total_len_;
  Update(std::span<const std::uint8_t>(pad, pad_len));
  total_len_ = saved;

  Digest digest;
  for (std::size_t i = 0; i < 8; ++i) {
    digest[4 * i + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

Sha256::Digest Sha256::Hash(std::span<const std::uint8_t> data) noexcept {
  Sha256 hasher;
  hasher.Update(data);
  return hasher.Finish();
}

Sha256::Digest Sha256::Hash(std::string_view text) noexcept {
  Sha256 hasher;
  hasher.Update(text);
  return hasher.Finish();
}

std::string Sha256::ToHex(const Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(kDigestSize * 2);
  for (std::uint8_t byte : digest) {
    out += kHex[byte >> 4];
    out += kHex[byte & 0xF];
  }
  return out;
}

}  // namespace vinelet::hash
