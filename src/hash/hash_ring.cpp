#include "hash/hash_ring.hpp"

#include "hash/sha256.hpp"

namespace vinelet::hash {

std::uint64_t HashRing::Mix(std::uint64_t member_id, unsigned replica) {
  // SplitMix64-style finalizer over (member, replica); avalanche quality
  // matters for ring balance, tested in hash_ring_test.
  std::uint64_t x = member_id * 0x9E3779B97F4A7C15ull + replica;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void HashRing::Add(std::uint64_t member_id) {
  if (members_.contains(member_id)) return;
  members_[member_id] = vnodes_;
  for (unsigned r = 0; r < vnodes_; ++r) {
    // First writer wins on (vanishingly unlikely) point collisions; Remove
    // only erases points it owns.
    ring_.emplace(Mix(member_id, r), member_id);
  }
}

void HashRing::Remove(std::uint64_t member_id) {
  auto it = members_.find(member_id);
  if (it == members_.end()) return;
  for (unsigned r = 0; r < it->second; ++r) {
    auto point = ring_.find(Mix(member_id, r));
    if (point != ring_.end() && point->second == member_id) ring_.erase(point);
  }
  members_.erase(it);
}

bool HashRing::Contains(std::uint64_t member_id) const {
  return members_.contains(member_id);
}

std::optional<std::uint64_t> HashRing::Owner(std::uint64_t key) const {
  if (ring_.empty()) return std::nullopt;
  auto it = ring_.lower_bound(Mix(key, 0x5EEDu));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::optional<std::uint64_t> HashRing::Owner(const std::string& key) const {
  Sha256::Digest digest = Sha256::Hash(key);
  std::uint64_t prefix = 0;
  for (int i = 0; i < 8; ++i) prefix = (prefix << 8) | digest[i];
  return Owner(prefix);
}

std::vector<std::uint64_t> HashRing::WalkFrom(std::uint64_t key) const {
  std::vector<std::uint64_t> order;
  order.reserve(members_.size());
  if (ring_.empty()) return order;
  auto it = ring_.lower_bound(Mix(key, 0x5EEDu));
  const std::size_t total = ring_.size();
  for (std::size_t seen = 0; seen < total && order.size() < members_.size();
       ++seen) {
    if (it == ring_.end()) it = ring_.begin();
    const std::uint64_t member = it->second;
    bool duplicate = false;
    for (auto existing : order) {
      if (existing == member) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) order.push_back(member);
    ++it;
  }
  return order;
}

std::vector<std::uint64_t> HashRing::Members() const {
  std::vector<std::uint64_t> out;
  out.reserve(members_.size());
  for (const auto& [member, _] : members_) out.push_back(member);
  return out;
}

}  // namespace vinelet::hash
