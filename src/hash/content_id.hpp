// ContentId: the unique, content-derived identity of a transferable blob.
//
// The paper requires transferable data to be "uniquely identified and
// read-only, otherwise data corruption can silently happen" (§2.2.2); a
// ContentId is the SHA-256 of the payload, so two files with the same bytes
// are the same file everywhere in the system.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.hpp"
#include "hash/sha256.hpp"

namespace vinelet::hash {

class ContentId {
 public:
  ContentId() = default;  // all-zero: "no content"

  static ContentId Of(const Blob& blob) {
    return ContentId(Sha256::Hash(blob.span()));
  }
  static ContentId Of(const ByteBuffer& buffer) {
    return ContentId(Sha256::Hash(buffer.span()));
  }
  static ContentId OfText(std::string_view text) {
    return ContentId(Sha256::Hash(text));
  }

  /// Rebuilds an id from a digest received off the wire (already computed
  /// by the sender; receivers re-verify payloads against it on Put).
  static ContentId FromDigest(const Sha256::Digest& digest) {
    return ContentId(digest);
  }

  const Sha256::Digest& digest() const noexcept { return digest_; }

  /// Full 64-char hex form.
  std::string ToHex() const { return Sha256::ToHex(digest_); }

  /// 12-char prefix used in log lines and cache filenames.
  std::string ShortHex() const { return ToHex().substr(0, 12); }

  /// First 8 bytes as an integer, handy for hashing into rings/maps.
  std::uint64_t Prefix64() const noexcept {
    std::uint64_t out = 0;
    for (int i = 0; i < 8; ++i) out = (out << 8) | digest_[i];
    return out;
  }

  bool IsZero() const noexcept {
    for (auto byte : digest_)
      if (byte != 0) return false;
    return true;
  }

  friend auto operator<=>(const ContentId&, const ContentId&) = default;

 private:
  explicit ContentId(const Sha256::Digest& digest) : digest_(digest) {}
  Sha256::Digest digest_{};
};

}  // namespace vinelet::hash

template <>
struct std::hash<vinelet::hash::ContentId> {
  std::size_t operator()(const vinelet::hash::ContentId& id) const noexcept {
    return static_cast<std::size_t>(id.Prefix64());
  }
};
