// Bounded/unbounded MPMC channel used as the in-process "network link"
// between manager, workers, and library threads in the real runtime.
//
// Semantics follow Go channels: Send blocks while full, Recv blocks while
// empty, Close wakes all waiters; Recv on a closed-and-drained channel
// returns nullopt, Send on a closed channel fails.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace vinelet {

template <typename T>
class Channel {
 public:
  /// capacity == 0 means unbounded.
  explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks until space is available.  Returns false if the channel closed.
  bool Send(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || !Full(); });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Enqueues elements of [begin, end) under one lock acquisition (batched
  /// dispatch amortization).  Blocks per element while full, like Send.
  /// Returns the number of elements consumed: equal to the range size on
  /// success, smaller if the channel closed mid-batch (elements past the
  /// returned count are untouched).
  template <typename It>
  std::size_t SendAll(It begin, It end) {
    std::unique_lock<std::mutex> lock(mu_);
    std::size_t sent = 0;
    for (It it = begin; it != end; ++it, ++sent) {
      not_full_.wait(lock, [&] { return closed_ || !Full(); });
      if (closed_) break;
      queue_.push_back(std::move(*it));
    }
    if (sent > 0) not_empty_.notify_all();
    return sent;
  }

  /// Non-blocking send.  Returns false if full or closed.
  bool TrySend(T value) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || Full()) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until a value is available or the channel is closed and drained.
  std::optional<T> Recv() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    return PopLocked();
  }

  /// Non-blocking receive.
  std::optional<T> TryRecv() {
    std::lock_guard<std::mutex> lock(mu_);
    return PopLocked();
  }

  /// Blocks up to `timeout`; nullopt on timeout or closed-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> RecvFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return closed_ || !queue_.empty(); });
    return PopLocked();
  }

  /// Closes the channel; queued values remain receivable.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  bool Full() const { return capacity_ != 0 && queue_.size() >= capacity_; }

  std::optional<T> PopLocked() {
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace vinelet
