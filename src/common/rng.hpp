// Deterministic pseudo-random number generation.
//
// The simulator must be bit-reproducible across runs and platforms (DES
// determinism is a tested invariant), so vinelet ships its own xoshiro256**
// implementation instead of relying on libstdc++ distribution internals.
#pragma once

#include <cstdint>
#include <vector>

namespace vinelet {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  /// Re-seeds via SplitMix64 so that nearby seeds give independent streams.
  void Seed(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t Next() noexcept;

  /// Uniform in [0, bound).  bound == 0 yields 0.
  std::uint64_t NextBelow(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double NextDouble() noexcept;

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) noexcept;

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double Normal(double mean, double stddev) noexcept;

  /// Exponential with the given mean (mean > 0).
  double Exponential(double mean) noexcept;

  /// Log-normal parameterized by the mean/stddev of the *underlying* normal.
  double LogNormal(double mu, double sigma) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// A new RNG whose stream is independent of this one's future output.
  Rng Fork() noexcept { return Rng(Next() ^ 0xA5A5A5A5DEADBEEFull); }

 private:
  std::uint64_t state_[4];
};

}  // namespace vinelet
