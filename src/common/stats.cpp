#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace vinelet {

void RunningStats::Add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {}

void Histogram::Add(double x) noexcept {
  std::size_t bin;
  if (x < lo_) {
    bin = 0;
  } else if (x >= hi_) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((x - lo_) / bin_width_);
    bin = std::min(bin, counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + bin_width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + bin_width_ * static_cast<double>(bin + 1);
}

std::string Histogram::Render(std::size_t width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(
                        static_cast<double>(counts_[i]) /
                        static_cast<double>(peak) * static_cast<double>(width));
    std::snprintf(line, sizeof(line), "[%7.2f, %7.2f) %8llu |", bin_lo(i),
                  bin_hi(i), static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

std::vector<TimeSeries::Point> TimeSeries::Downsample(
    std::size_t max_points) const {
  if (points_.size() <= max_points || max_points < 2) return points_;
  std::vector<Point> out;
  out.reserve(max_points);
  const double step = static_cast<double>(points_.size() - 1) /
                      static_cast<double>(max_points - 1);
  for (std::size_t i = 0; i < max_points; ++i) {
    out.push_back(points_[static_cast<std::size_t>(
        std::llround(step * static_cast<double>(i)))]);
  }
  return out;
}

}  // namespace vinelet
