// A thread-local pool of byte-vector backing stores for the encode hot path.
//
// Every protocol message is serialized into a fresh ByteBuffer and shipped as
// a Blob whose refcounted payload is freed when the last view drops.  At
// dispatch rates that is an allocate/free pair per invocation, per status
// probe, per chunk header — all for buffers of a handful of recurring sizes.
// The pool short-circuits the cycle: ByteBuffer::Reserve draws its vector
// from the releasing thread's freelist and the Blob deleter puts the storage
// back, so steady-state encode traffic recycles a few warm buffers instead
// of touching the allocator.
//
// The pool is a process-wide toggle (on by default); benchmarks flip it off
// to measure exactly what it buys.  Retention is bounded per thread and per
// buffer so a one-off giant payload cannot pin memory forever.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vinelet {

class BufferPool {
 public:
  /// A vector with size 0 and capacity ≥ `min_capacity`, reused from the
  /// calling thread's freelist when one fits (otherwise freshly reserved).
  static std::vector<std::uint8_t> Acquire(std::size_t min_capacity);

  /// Returns a buffer's storage to the calling thread's freelist.  Oversized
  /// buffers and overflow beyond the per-thread retention cap are simply
  /// freed.
  static void Release(std::vector<std::uint8_t>&& buffer) noexcept;

  /// Process-wide switch.  Disabled, Acquire is a plain reserve and Release
  /// a plain free — the by-value baseline for the arena on/off benchmark.
  static void SetEnabled(bool enabled) noexcept;
  static bool enabled() noexcept;

  struct Stats {
    std::uint64_t hits = 0;      // Acquire served from a freelist
    std::uint64_t misses = 0;    // Acquire fell through to the allocator
    std::uint64_t released = 0;  // buffers retained by Release
    std::uint64_t hwm_bytes = 0; // peak bytes retained across all freelists
  };
  static Stats GetStats() noexcept;

  /// Drops the calling thread's freelist (benchmarks use it to start cold).
  static void DrainThisThread() noexcept;

 private:
  // Retention bounds: enough to keep a worker's steady-state encode sizes
  // warm, small enough that 150 worker threads stay in tens of MB.
  static constexpr std::size_t kMaxBuffersPerThread = 16;
  static constexpr std::size_t kMaxRetainedBytesPerThread = 8u << 20;
  static constexpr std::size_t kMaxBufferBytes = 4u << 20;
};

}  // namespace vinelet
