#include "common/flags.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/strings.hpp"

namespace vinelet {

Result<Flags> Flags::Parse(int argc, const char* const* argv,
                           const std::vector<std::string>& allowed) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
      // "--flag value" form, unless the next token is another flag or
      // missing (then it is a boolean flag).
      if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (std::find(allowed.begin(), allowed.end(), name) == allowed.end())
      return InvalidArgumentError("unknown flag: --" + name);
    flags.values_[name] = value;
  }
  return flags;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

Result<std::int64_t> Flags::GetInt(const std::string& name,
                                   std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0')
    return InvalidArgumentError("flag --" + name + " is not an integer: " +
                                it->second);
  return static_cast<std::int64_t>(parsed);
}

Result<double> Flags::GetDouble(const std::string& name,
                                double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0')
    return InvalidArgumentError("flag --" + name + " is not a number: " +
                                it->second);
  return parsed;
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace vinelet
