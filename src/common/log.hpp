// Minimal thread-safe leveled logger.
//
// The manager event loop, worker threads, and library threads all log through
// one global sink; lines are written atomically under a mutex so interleaved
// output stays readable.  Logging below the active level costs one relaxed
// atomic load.
//
// Each line carries a monotonic timestamp (seconds since process start) and
// a short per-thread id, e.g.:
//
//   [   0.014208] [INFO ] [t2] manager: worker 1 joined
//
// The initial level honors the VINELET_LOG_LEVEL environment variable
// ("debug" | "info" | "warn" | "error" | "off", case-insensitive); default
// kWarn (quiet tests).  The output sink is pluggable so tests can capture
// log lines instead of scraping stderr.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace vinelet {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

std::string_view LogLevelName(LogLevel level) noexcept;

/// Parses "debug"/"info"/"warn"/"error"/"off" (any case); nullopt otherwise.
std::optional<LogLevel> ParseLogLevel(std::string_view text) noexcept;

/// Global log configuration.
class Log {
 public:
  /// Receives one fully formatted line (no trailing newline).
  using Sink = std::function<void(LogLevel level, std::string_view line)>;

  /// Sets the minimum level that is emitted.  The startup default is kWarn,
  /// overridable via VINELET_LOG_LEVEL.
  static void SetLevel(LogLevel level) noexcept;
  static LogLevel GetLevel() noexcept;

  /// True when `level` would be emitted.
  static bool Enabled(LogLevel level) noexcept;

  /// Replaces the output sink; an empty sink restores stderr.
  static void SetSink(Sink sink);

  /// Formats one line ("[<ts>] [LEVEL] [t<id>] tag: message") and hands it
  /// to the active sink.
  static void Write(LogLevel level, std::string_view tag,
                    std::string_view message);

  /// Seconds since process start on the logger's monotonic clock.
  static double MonotonicNow() noexcept;

  /// Small stable id of the calling thread (assigned on first log).
  static std::uint64_t CurrentThreadId() noexcept;

 private:
  static std::atomic<LogLevel> level_;
};

namespace internal {

/// Accumulates one log line via operator<< and emits it on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view tag) : level_(level), tag_(tag) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Log::Write(level_, tag_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view tag_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace vinelet

/// Usage: VLOG_INFO("manager") << "worker " << id << " joined";
#define VINELET_LOG(level, tag)                      \
  if (!::vinelet::Log::Enabled(level)) {             \
  } else                                             \
    ::vinelet::internal::LogLine(level, tag)

#define VLOG_DEBUG(tag) VINELET_LOG(::vinelet::LogLevel::kDebug, tag)
#define VLOG_INFO(tag) VINELET_LOG(::vinelet::LogLevel::kInfo, tag)
#define VLOG_WARN(tag) VINELET_LOG(::vinelet::LogLevel::kWarn, tag)
#define VLOG_ERROR(tag) VINELET_LOG(::vinelet::LogLevel::kError, tag)
