// Minimal thread-safe leveled logger.
//
// The manager event loop, worker threads, and library threads all log through
// one global sink; lines are written atomically under a mutex so interleaved
// output stays readable.  Logging below the active level costs one relaxed
// atomic load.
#pragma once

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace vinelet {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Global log configuration.
class Log {
 public:
  /// Sets the minimum level that is emitted.  Default: kWarn (quiet tests).
  static void SetLevel(LogLevel level) noexcept;
  static LogLevel GetLevel() noexcept;

  /// True when `level` would be emitted.
  static bool Enabled(LogLevel level) noexcept;

  /// Writes one formatted line ("[LEVEL] tag: message") to stderr.
  static void Write(LogLevel level, std::string_view tag,
                    std::string_view message);

 private:
  static std::atomic<LogLevel> level_;
};

namespace internal {

/// Accumulates one log line via operator<< and emits it on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view tag) : level_(level), tag_(tag) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Log::Write(level_, tag_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view tag_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace vinelet

/// Usage: VLOG_INFO("manager") << "worker " << id << " joined";
#define VINELET_LOG(level, tag)                      \
  if (!::vinelet::Log::Enabled(level)) {             \
  } else                                             \
    ::vinelet::internal::LogLine(level, tag)

#define VLOG_DEBUG(tag) VINELET_LOG(::vinelet::LogLevel::kDebug, tag)
#define VLOG_INFO(tag) VINELET_LOG(::vinelet::LogLevel::kInfo, tag)
#define VLOG_WARN(tag) VINELET_LOG(::vinelet::LogLevel::kWarn, tag)
#define VLOG_ERROR(tag) VINELET_LOG(::vinelet::LogLevel::kError, tag)
