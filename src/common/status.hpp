// Error-handling primitives used throughout vinelet.
//
// Vinelet avoids exceptions on hot control paths: operations that can fail
// return a Status (or Result<T> when they also produce a value).  This keeps
// failure propagation explicit in the manager/worker protocol code, where a
// failed transfer or a dead worker is an expected event, not a programming
// error.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace vinelet {

/// Coarse failure categories shared by all modules.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,     // transient: retry may succeed (e.g. worker busy)
  kDataLoss,        // corruption detected (content hash mismatch)
  kCancelled,
  kTimeout,
  kInternal,
};

/// Human-readable name of an ErrorCode ("NOT_FOUND", ...).
std::string_view ErrorCodeName(ErrorCode code) noexcept;

/// A cheap, copyable success-or-error value.
///
/// The OK status carries no allocation; error statuses carry a code and a
/// message describing the failure site.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs an error status; `code` must not be kOk.
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }

  bool ok() const noexcept { return code_ == ErrorCode::kOk; }
  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

// Factory helpers mirroring the ErrorCode values.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnavailableError(std::string message);
Status DataLossError(std::string message);
Status CancelledError(std::string message);
Status TimeoutError(std::string message);
Status InternalError(std::string message);

/// A value-or-Status result.  Holds either a T (success) or a non-OK Status.
///
/// Access to the value when !ok() aborts; callers are expected to check ok()
/// (or use value_or) first, exactly like std::optional.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : rep_(std::move(status)) {}  // NOLINT

  bool ok() const noexcept { return std::holds_alternative<T>(rep_); }

  /// Status of the result; OK when a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  T value_or(T fallback) const& {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates a non-OK status from an expression returning Status.
#define VINELET_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::vinelet::Status vinelet_status_ = (expr);      \
    if (!vinelet_status_.ok()) return vinelet_status_; \
  } while (false)

}  // namespace vinelet
