// Minimal command-line flag parsing for the bench and example binaries.
//
// Supports --key=value and --key value forms, typed getters with defaults,
// and strict rejection of unknown flags (so a typo'd sweep parameter fails
// loudly instead of silently benchmarking the default).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace vinelet {

class Flags {
 public:
  /// Parses argv; `allowed` lists every recognized flag name (without the
  /// leading dashes).  Positional arguments are collected separately.
  static Result<Flags> Parse(int argc, const char* const* argv,
                             const std::vector<std::string>& allowed);

  bool Has(const std::string& name) const { return values_.contains(name); }

  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;
  Result<std::int64_t> GetInt(const std::string& name,
                              std::int64_t fallback) const;
  Result<double> GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace vinelet
