#include "common/log.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace vinelet {
namespace {

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

Log::Sink& SinkSlot() {
  static Log::Sink sink;  // empty = stderr
  return sink;
}

char AsciiLower(char c) noexcept {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

LogLevel InitialLevel() noexcept {
  const char* env = std::getenv("VINELET_LOG_LEVEL");
  if (env != nullptr) {
    if (auto parsed = ParseLogLevel(env)) return *parsed;
  }
  return LogLevel::kWarn;
}

std::chrono::steady_clock::time_point ProcessOrigin() noexcept {
  static const auto origin = std::chrono::steady_clock::now();
  return origin;
}

/// Touches the origin before main() so the first logged timestamp is
/// process-relative, not first-log-relative.
const bool kOriginInitialized = (ProcessOrigin(), true);

}  // namespace

std::string_view LogLevelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::optional<LogLevel> ParseLogLevel(std::string_view text) noexcept {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) lower += AsciiLower(c);
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

std::atomic<LogLevel> Log::level_{InitialLevel()};

void Log::SetLevel(LogLevel level) noexcept {
  level_.store(level, std::memory_order_relaxed);
}

LogLevel Log::GetLevel() noexcept {
  return level_.load(std::memory_order_relaxed);
}

bool Log::Enabled(LogLevel level) noexcept {
  return level >= level_.load(std::memory_order_relaxed) &&
         level != LogLevel::kOff;
}

void Log::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

double Log::MonotonicNow() noexcept {
  (void)kOriginInitialized;
  const auto delta = std::chrono::steady_clock::now() - ProcessOrigin();
  return std::chrono::duration<double>(delta).count();
}

std::uint64_t Log::CurrentThreadId() noexcept {
  static std::atomic<std::uint64_t> next{1};
  thread_local const std::uint64_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Log::Write(LogLevel level, std::string_view tag,
                std::string_view message) {
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[%11.6f] [%-5.5s] [t%llu] ",
                MonotonicNow(),
                std::string(LogLevelName(level)).c_str(),
                static_cast<unsigned long long>(CurrentThreadId()));
  std::string line;
  line.reserve(sizeof(prefix) + tag.size() + message.size() + 2);
  line += prefix;
  line += tag;
  line += ": ";
  line += message;

  std::lock_guard<std::mutex> lock(SinkMutex());
  Log::Sink& sink = SinkSlot();
  if (sink) {
    sink(level, line);
  } else {
    std::fprintf(stderr, "%.*s\n", static_cast<int>(line.size()),
                 line.c_str());
  }
}

}  // namespace vinelet
