#include "common/log.hpp"

#include <cstdio>
#include <mutex>

namespace vinelet {
namespace {

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

std::atomic<LogLevel> Log::level_{LogLevel::kWarn};

void Log::SetLevel(LogLevel level) noexcept {
  level_.store(level, std::memory_order_relaxed);
}

LogLevel Log::GetLevel() noexcept {
  return level_.load(std::memory_order_relaxed);
}

bool Log::Enabled(LogLevel level) noexcept {
  return level >= level_.load(std::memory_order_relaxed) &&
         level != LogLevel::kOff;
}

void Log::Write(LogLevel level, std::string_view tag,
                std::string_view message) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
               static_cast<int>(LevelName(level).size()), LevelName(level).data(),
               static_cast<int>(tag.size()), tag.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace vinelet
