#include "common/bytes.hpp"

#include <array>
#include <cstdio>
#include <utility>

#include "common/buffer_pool.hpp"

namespace vinelet {

ByteBuffer::ByteBuffer(std::string&& text) {
  data_.reserve(text.size());
  data_.assign(text.begin(), text.end());
  text.clear();
}

ByteBuffer ByteBuffer::Filled(std::size_t size, std::uint8_t fill) {
  return ByteBuffer(std::vector<std::uint8_t>(size, fill));
}

void ByteBuffer::Append(std::span<const std::uint8_t> bytes) {
  data_.insert(data_.end(), bytes.begin(), bytes.end());
}

void ByteBuffer::Reserve(std::size_t capacity) {
  if (data_.capacity() == 0 && capacity > 0) {
    data_ = BufferPool::Acquire(capacity);
    return;
  }
  data_.reserve(capacity);
}

Blob::Blob(std::vector<std::uint8_t> data) {
  // The deleter hands the vector's storage back to the BufferPool on the
  // releasing thread, closing the Reserve → encode → ship → drop cycle
  // without an allocator round trip.
  auto owned = std::shared_ptr<std::vector<std::uint8_t>>(
      new std::vector<std::uint8_t>(std::move(data)),
      [](std::vector<std::uint8_t>* v) {
        BufferPool::Release(std::move(*v));
        delete v;
      });
  bytes_ = std::span<const std::uint8_t>(owned->data(), owned->size());
  owner_ = std::move(owned);
}

Blob Blob::FromString(std::string&& text) {
  auto owned = std::make_shared<const std::string>(std::move(text));
  std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(owned->data()), owned->size());
  return Blob(std::move(owned), bytes);
}

Blob Blob::Slice(std::size_t offset, std::size_t len) const {
  const std::size_t begin = std::min(offset, bytes_.size());
  const std::size_t count = std::min(len, bytes_.size() - begin);
  return Blob(owner_, bytes_.subspan(begin, count));
}

std::string FormatBytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB",
                                                        "TB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char out[32];
  if (unit == 0) {
    std::snprintf(out, sizeof(out), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(out, sizeof(out), "%.1f %s", value, kUnits[unit]);
  }
  return out;
}

}  // namespace vinelet
