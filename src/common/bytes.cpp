#include "common/bytes.hpp"

#include <array>
#include <cstdio>

namespace vinelet {

ByteBuffer ByteBuffer::Filled(std::size_t size, std::uint8_t fill) {
  return ByteBuffer(std::vector<std::uint8_t>(size, fill));
}

void ByteBuffer::Append(std::span<const std::uint8_t> bytes) {
  data_.insert(data_.end(), bytes.begin(), bytes.end());
}

std::string FormatBytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB",
                                                        "TB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char out[32];
  if (unit == 0) {
    std::snprintf(out, sizeof(out), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(out, sizeof(out), "%.1f %s", value, kUnits[unit]);
  }
  return out;
}

}  // namespace vinelet
