#include "common/status.hpp"

namespace vinelet {

std::string_view ErrorCodeName(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kDataLoss: return "DATA_LOSS";
    case ErrorCode::kCancelled: return "CANCELLED";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(ErrorCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(ErrorCode::kAlreadyExists, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(ErrorCode::kResourceExhausted, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(ErrorCode::kFailedPrecondition, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(ErrorCode::kUnavailable, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(ErrorCode::kDataLoss, std::move(message));
}
Status CancelledError(std::string message) {
  return Status(ErrorCode::kCancelled, std::move(message));
}
Status TimeoutError(std::string message) {
  return Status(ErrorCode::kTimeout, std::move(message));
}
Status InternalError(std::string message) {
  return Status(ErrorCode::kInternal, std::move(message));
}

}  // namespace vinelet
