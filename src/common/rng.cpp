#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace vinelet {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

std::uint64_t Rng::Next() noexcept {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method: unbiased and fast.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextDouble() noexcept {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Normal(double mean, double stddev) noexcept {
  // Box–Muller; u1 is kept away from zero to avoid log(0).
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Exponential(double mean) noexcept {
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

double Rng::LogNormal(double mu, double sigma) noexcept {
  return std::exp(Normal(mu, sigma));
}

}  // namespace vinelet
