// Clock abstraction shared by the real runtime and the simulator.
//
// All timing in vinelet is expressed in seconds as double (the paper reports
// all measurements that way).  The real runtime uses WallClock; unit tests
// use ManualClock; the DES kernel owns its own virtual clock that implements
// this interface for code reused across backends.
#pragma once

#include <chrono>

namespace vinelet {

/// Monotonic time source, in seconds.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double Now() const = 0;
};

/// Real monotonic clock (steady_clock), origin at construction.
class WallClock final : public Clock {
 public:
  WallClock() : origin_(std::chrono::steady_clock::now()) {}

  double Now() const override {
    const auto delta = std::chrono::steady_clock::now() - origin_;
    return std::chrono::duration<double>(delta).count();
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

/// Hand-advanced clock for deterministic tests.
class ManualClock final : public Clock {
 public:
  double Now() const override { return now_; }
  void Advance(double seconds) { now_ += seconds; }
  void Set(double seconds) { now_ = seconds; }

 private:
  double now_ = 0.0;
};

/// A stopwatch over an arbitrary Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock) : clock_(clock), start_(clock.Now()) {}
  double Elapsed() const { return clock_.Now() - start_; }
  void Restart() { start_ = clock_.Now(); }

 private:
  const Clock& clock_;
  double start_;
};

}  // namespace vinelet
