// Small string utilities shared by config parsing and report printing.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace vinelet {

/// Splits on a delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char delim);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);

/// Fixed-point formatting helper ("12.346").
std::string FormatDouble(double value, int precision = 3);

/// Left-pads to `width` with spaces (no truncation).
std::string PadLeft(std::string_view text, std::size_t width);
std::string PadRight(std::string_view text, std::size_t width);

}  // namespace vinelet
