// Statistics containers used for experiment output: running moments,
// fixed-width histograms (Fig 7), and time series (Figs 10/11).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace vinelet {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x) noexcept;
  void Merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin so the total count is preserved (the paper's Fig 7 clips
/// at 40 s the same way).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const noexcept { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Renders an ASCII bar chart, one bin per row, bars scaled to `width`.
  std::string Render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// (t, value) series sampled during a run; supports down-sampling for print.
class TimeSeries {
 public:
  void Add(double t, double value) { points_.push_back({t, value}); }
  std::size_t size() const noexcept { return points_.size(); }
  bool empty() const noexcept { return points_.empty(); }

  struct Point {
    double t;
    double value;
  };
  const std::vector<Point>& points() const noexcept { return points_; }

  /// At most `max_points` evenly spaced samples (always keeps endpoints).
  std::vector<Point> Downsample(std::size_t max_points) const;

 private:
  std::vector<Point> points_;
};

}  // namespace vinelet
