// ByteBuffer: the unit of data movement in vinelet.
//
// Everything that crosses the (real or simulated) network — serialized
// functions, environment tarballs, invocation arguments, results — is a
// ByteBuffer.  Buffers are cheaply shareable (shared_ptr payload) because the
// same content-addressed blob may be resident in many caches at once; the
// read-only discipline required by the paper's distribution mechanism
// ("any transferable data has to be uniquely identified and read-only") is
// enforced by only exposing const access to shared payloads.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace vinelet {

/// A mutable, owning byte string used while building payloads.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<std::uint8_t> data) : data_(std::move(data)) {}
  explicit ByteBuffer(std::string_view text)
      : data_(text.begin(), text.end()) {}
  /// Bulk-assigns from a string with an exact reservation.  (Vector storage
  /// cannot adopt string memory; the true zero-copy entry point for string
  /// payloads is Blob::FromString(std::string&&).)
  explicit ByteBuffer(std::string&& text);
  /// Literal overload; without it, `ByteBuffer("x")` is ambiguous between the
  /// string_view and string&& forms.
  explicit ByteBuffer(const char* text) : ByteBuffer(std::string_view(text)) {}

  /// A buffer of `size` bytes, each set to `fill`.
  static ByteBuffer Filled(std::size_t size, std::uint8_t fill);

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  const std::uint8_t* data() const noexcept { return data_.data(); }
  std::uint8_t* data() noexcept { return data_.data(); }

  std::span<const std::uint8_t> span() const noexcept { return data_; }

  void Append(std::span<const std::uint8_t> bytes);
  void Append(const ByteBuffer& other) { Append(other.span()); }
  void AppendByte(std::uint8_t byte) { data_.push_back(byte); }

  void Clear() noexcept { data_.clear(); }
  /// Pre-sizes the buffer.  An empty buffer draws its storage from the
  /// BufferPool, so encode paths that Reserve up front recycle warm vectors
  /// (the matching Release happens in the Blob deleter once the payload's
  /// last reference drops).
  void Reserve(std::size_t capacity);
  void Resize(std::size_t size) { data_.resize(size); }

  /// Interprets the contents as text (no validation).
  std::string ToString() const { return std::string(data_.begin(), data_.end()); }

  std::vector<std::uint8_t>& vec() noexcept { return data_; }
  const std::vector<std::uint8_t>& vec() const noexcept { return data_; }

  friend bool operator==(const ByteBuffer& a, const ByteBuffer& b) = default;

 private:
  std::vector<std::uint8_t> data_;
};

/// An immutable, reference-counted blob: the transferable unit.
///
/// Copying a Blob copies a pointer; the payload is shared.  This mirrors the
/// paper's requirement that distributed files be read-only so that
/// peer-to-peer replication can never observe torn writes.
///
/// A Blob is a view (span) into a type-erased refcounted allocation, so
/// Slice() produces chunk views that keep the parent payload alive without
/// copying a byte — the property the pipelined broadcast relay relies on.
class Blob {
 public:
  Blob() = default;

  explicit Blob(ByteBuffer buffer) : Blob(std::move(buffer.vec())) {}

  explicit Blob(std::vector<std::uint8_t> data);

  static Blob FromString(std::string_view text) {
    return Blob(std::vector<std::uint8_t>(text.begin(), text.end()));
  }

  /// Adopts the string's storage as the refcounted payload — no byte copy.
  static Blob FromString(std::string&& text);

  /// Literal overload; without it, `FromString("x")` is ambiguous between the
  /// string_view and string&& forms.
  static Blob FromString(const char* text) {
    return FromString(std::string_view(text));
  }

  std::size_t size() const noexcept { return bytes_.size(); }
  bool empty() const noexcept { return bytes_.empty(); }
  std::span<const std::uint8_t> span() const noexcept { return bytes_; }
  const std::uint8_t* data() const noexcept { return bytes_.data(); }

  std::string ToString() const {
    return std::string(bytes_.begin(), bytes_.end());
  }

  /// A zero-copy view of `[offset, offset + len)` sharing this blob's
  /// refcounted payload.  Ranges past the end are clamped.
  Blob Slice(std::size_t offset, std::size_t len) const;

  /// True when both blobs view the same refcounted allocation.  Tests use
  /// this to assert that chunk relays share payload memory instead of
  /// copying it.
  bool SharesPayloadWith(const Blob& other) const noexcept {
    return owner_ != nullptr && owner_ == other.owner_;
  }

  /// Bytewise content equality (not pointer identity).
  friend bool operator==(const Blob& a, const Blob& b) {
    return a.bytes_.size() == b.bytes_.size() &&
           std::equal(a.bytes_.begin(), a.bytes_.end(), b.bytes_.begin());
  }

 private:
  Blob(std::shared_ptr<const void> owner, std::span<const std::uint8_t> bytes)
      : owner_(std::move(owner)), bytes_(bytes) {}

  std::shared_ptr<const void> owner_;
  std::span<const std::uint8_t> bytes_;
};

/// Formats a byte count as a human-readable string ("572.0 MB").
std::string FormatBytes(std::uint64_t bytes);

}  // namespace vinelet
