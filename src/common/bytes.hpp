// ByteBuffer: the unit of data movement in vinelet.
//
// Everything that crosses the (real or simulated) network — serialized
// functions, environment tarballs, invocation arguments, results — is a
// ByteBuffer.  Buffers are cheaply shareable (shared_ptr payload) because the
// same content-addressed blob may be resident in many caches at once; the
// read-only discipline required by the paper's distribution mechanism
// ("any transferable data has to be uniquely identified and read-only") is
// enforced by only exposing const access to shared payloads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace vinelet {

/// A mutable, owning byte string used while building payloads.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<std::uint8_t> data) : data_(std::move(data)) {}
  explicit ByteBuffer(std::string_view text)
      : data_(text.begin(), text.end()) {}

  /// A buffer of `size` bytes, each set to `fill`.
  static ByteBuffer Filled(std::size_t size, std::uint8_t fill);

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  const std::uint8_t* data() const noexcept { return data_.data(); }
  std::uint8_t* data() noexcept { return data_.data(); }

  std::span<const std::uint8_t> span() const noexcept { return data_; }

  void Append(std::span<const std::uint8_t> bytes);
  void Append(const ByteBuffer& other) { Append(other.span()); }
  void AppendByte(std::uint8_t byte) { data_.push_back(byte); }

  void Clear() noexcept { data_.clear(); }
  void Reserve(std::size_t capacity) { data_.reserve(capacity); }
  void Resize(std::size_t size) { data_.resize(size); }

  /// Interprets the contents as text (no validation).
  std::string ToString() const { return std::string(data_.begin(), data_.end()); }

  std::vector<std::uint8_t>& vec() noexcept { return data_; }
  const std::vector<std::uint8_t>& vec() const noexcept { return data_; }

  friend bool operator==(const ByteBuffer& a, const ByteBuffer& b) = default;

 private:
  std::vector<std::uint8_t> data_;
};

/// An immutable, reference-counted blob: the transferable unit.
///
/// Copying a Blob copies a pointer; the payload is shared.  This mirrors the
/// paper's requirement that distributed files be read-only so that
/// peer-to-peer replication can never observe torn writes.
class Blob {
 public:
  Blob() : data_(std::make_shared<const std::vector<std::uint8_t>>()) {}

  explicit Blob(ByteBuffer buffer)
      : data_(std::make_shared<const std::vector<std::uint8_t>>(
            std::move(buffer.vec()))) {}

  explicit Blob(std::vector<std::uint8_t> data)
      : data_(std::make_shared<const std::vector<std::uint8_t>>(
            std::move(data))) {}

  static Blob FromString(std::string_view text) {
    return Blob(std::vector<std::uint8_t>(text.begin(), text.end()));
  }

  std::size_t size() const noexcept { return data_->size(); }
  bool empty() const noexcept { return data_->empty(); }
  std::span<const std::uint8_t> span() const noexcept { return *data_; }
  const std::uint8_t* data() const noexcept { return data_->data(); }

  std::string ToString() const {
    return std::string(data_->begin(), data_->end());
  }

  /// Bytewise content equality (not pointer identity).
  friend bool operator==(const Blob& a, const Blob& b) {
    return *a.data_ == *b.data_;
  }

 private:
  std::shared_ptr<const std::vector<std::uint8_t>> data_;
};

/// Formats a byte count as a human-readable string ("572.0 MB").
std::string FormatBytes(std::uint64_t bytes);

}  // namespace vinelet
