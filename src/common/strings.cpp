#include "common/strings.hpp"

#include <cctype>
#include <cstdio>

namespace vinelet {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int precision) {
  char out[64];
  std::snprintf(out, sizeof(out), "%.*f", precision, value);
  return out;
}

std::string PadLeft(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text);
  std::string out(width - text.size(), ' ');
  out += text;
  return out;
}

std::string PadRight(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

}  // namespace vinelet
