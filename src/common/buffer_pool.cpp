#include "common/buffer_pool.hpp"

#include <atomic>
#include <utility>

namespace vinelet {
namespace {

std::atomic<bool> g_enabled{true};
std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_misses{0};
std::atomic<std::uint64_t> g_released{0};
std::atomic<std::uint64_t> g_retained_bytes{0};
std::atomic<std::uint64_t> g_hwm_bytes{0};

void NoteRetained(std::uint64_t delta_add) noexcept {
  const std::uint64_t now =
      g_retained_bytes.fetch_add(delta_add, std::memory_order_relaxed) +
      delta_add;
  std::uint64_t hwm = g_hwm_bytes.load(std::memory_order_relaxed);
  while (now > hwm && !g_hwm_bytes.compare_exchange_weak(
                          hwm, now, std::memory_order_relaxed)) {
  }
}

struct LocalPool {
  std::vector<std::vector<std::uint8_t>> free;
  std::size_t bytes = 0;

  ~LocalPool() {
    g_retained_bytes.fetch_sub(bytes, std::memory_order_relaxed);
  }
};

LocalPool& Local() noexcept {
  thread_local LocalPool pool;
  return pool;
}

}  // namespace

std::vector<std::uint8_t> BufferPool::Acquire(std::size_t min_capacity) {
  if (g_enabled.load(std::memory_order_relaxed)) {
    LocalPool& pool = Local();
    // Smallest-fit over a ≤16-entry freelist: trivial scan, and it keeps a
    // big retained buffer from being burned on a tiny message.
    std::size_t best = pool.free.size();
    for (std::size_t i = 0; i < pool.free.size(); ++i) {
      if (pool.free[i].capacity() < min_capacity) continue;
      if (best == pool.free.size() ||
          pool.free[i].capacity() < pool.free[best].capacity()) {
        best = i;
      }
    }
    if (best != pool.free.size()) {
      std::vector<std::uint8_t> out = std::move(pool.free[best]);
      pool.free.erase(pool.free.begin() + static_cast<long>(best));
      pool.bytes -= out.capacity();
      g_retained_bytes.fetch_sub(out.capacity(), std::memory_order_relaxed);
      g_hits.fetch_add(1, std::memory_order_relaxed);
      out.clear();
      return out;
    }
    g_misses.fetch_add(1, std::memory_order_relaxed);
  }
  std::vector<std::uint8_t> out;
  out.reserve(min_capacity);
  return out;
}

void BufferPool::Release(std::vector<std::uint8_t>&& buffer) noexcept {
  const std::size_t cap = buffer.capacity();
  if (!g_enabled.load(std::memory_order_relaxed) || cap == 0 ||
      cap > kMaxBufferBytes) {
    return;  // dropping the rvalue frees it
  }
  LocalPool& pool = Local();
  if (pool.free.size() >= kMaxBuffersPerThread ||
      pool.bytes + cap > kMaxRetainedBytesPerThread) {
    return;
  }
  buffer.clear();
  pool.free.push_back(std::move(buffer));
  pool.bytes += cap;
  g_released.fetch_add(1, std::memory_order_relaxed);
  NoteRetained(cap);
}

void BufferPool::SetEnabled(bool enabled) noexcept {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool BufferPool::enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

BufferPool::Stats BufferPool::GetStats() noexcept {
  return Stats{g_hits.load(std::memory_order_relaxed),
               g_misses.load(std::memory_order_relaxed),
               g_released.load(std::memory_order_relaxed),
               g_hwm_bytes.load(std::memory_order_relaxed)};
}

void BufferPool::DrainThisThread() noexcept {
  LocalPool& pool = Local();
  g_retained_bytes.fetch_sub(pool.bytes, std::memory_order_relaxed);
  pool.bytes = 0;
  pool.free.clear();
}

}  // namespace vinelet
