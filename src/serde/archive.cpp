#include "serde/archive.hpp"

#include <bit>
#include <cstring>

namespace vinelet::serde {

void ArchiveWriter::WriteU8(std::uint8_t value) { buffer_.AppendByte(value); }

void ArchiveWriter::WriteU32(std::uint32_t value) {
  std::uint8_t raw[4];
  for (int i = 0; i < 4; ++i)
    raw[i] = static_cast<std::uint8_t>(value >> (8 * i));
  buffer_.Append(raw);
}

void ArchiveWriter::WriteU64(std::uint64_t value) {
  std::uint8_t raw[8];
  for (int i = 0; i < 8; ++i)
    raw[i] = static_cast<std::uint8_t>(value >> (8 * i));
  buffer_.Append(raw);
}

void ArchiveWriter::WriteI64(std::int64_t value) {
  WriteU64(std::bit_cast<std::uint64_t>(value));
}

void ArchiveWriter::WriteF64(double value) {
  WriteU64(std::bit_cast<std::uint64_t>(value));
}

void ArchiveWriter::WriteString(std::string_view text) {
  Reserve(8 + text.size());
  WriteU64(text.size());
  buffer_.Append(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

void ArchiveWriter::WriteBytes(std::span<const std::uint8_t> bytes) {
  Reserve(8 + bytes.size());
  WriteU64(bytes.size());
  buffer_.Append(bytes);
}

Status ArchiveReader::Need(std::size_t bytes) const {
  // Compare against the remaining span instead of `pos_ + bytes` — the sum
  // wraps for attacker-controlled u64 lengths near SIZE_MAX, which would
  // make a truncated archive look satisfiable.
  if (bytes > data_.size() - pos_) {
    return DataLossError("archive truncated: need " + std::to_string(bytes) +
                         " bytes at offset " + std::to_string(pos_) +
                         ", have " + std::to_string(data_.size() - pos_));
  }
  return Status::Ok();
}

Result<std::uint8_t> ArchiveReader::ReadU8() {
  VINELET_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<std::uint32_t> ArchiveReader::ReadU32() {
  VINELET_RETURN_IF_ERROR(Need(4));
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i)
    value |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return value;
}

Result<std::uint64_t> ArchiveReader::ReadU64() {
  VINELET_RETURN_IF_ERROR(Need(8));
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i)
    value |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return value;
}

Result<std::int64_t> ArchiveReader::ReadI64() {
  auto raw = ReadU64();
  if (!raw.ok()) return raw.status();
  return std::bit_cast<std::int64_t>(*raw);
}

Result<double> ArchiveReader::ReadF64() {
  auto raw = ReadU64();
  if (!raw.ok()) return raw.status();
  return std::bit_cast<double>(*raw);
}

Result<bool> ArchiveReader::ReadBool() {
  auto raw = ReadU8();
  if (!raw.ok()) return raw.status();
  return *raw != 0;
}

Result<std::string> ArchiveReader::ReadString() {
  auto len = ReadU64();
  if (!len.ok()) return len.status();
  VINELET_RETURN_IF_ERROR(Need(*len));
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), *len);
  pos_ += *len;
  return out;
}

Result<std::vector<std::uint8_t>> ArchiveReader::ReadBytes() {
  auto len = ReadU64();
  if (!len.ok()) return len.status();
  VINELET_RETURN_IF_ERROR(Need(*len));
  std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                data_.begin() + static_cast<long>(pos_ + *len));
  pos_ += *len;
  return out;
}

Result<Blob> ArchiveReader::ReadBlob() {
  auto len = ReadU64();
  if (!len.ok()) return len.status();
  VINELET_RETURN_IF_ERROR(Need(*len));
  const std::size_t offset = pos_;
  pos_ += *len;
  // Zero-copy when this reader is backed by the blob it decodes from.
  if (backing_.data() == data_.data() && backing_.size() == data_.size()) {
    return backing_.Slice(offset, *len);
  }
  return Blob(std::vector<std::uint8_t>(
      data_.begin() + static_cast<long>(offset),
      data_.begin() + static_cast<long>(offset + *len)));
}

}  // namespace vinelet::serde
