#include "serde/function_registry.hpp"

#include <algorithm>
#include <set>

#include "hash/sha256.hpp"
#include "serde/archive.hpp"

namespace vinelet::serde {
namespace {
const Blob kEmptyBlob;
constexpr std::string_view kFunctionMagic = "VFN1";
}  // namespace

const Blob& InvocationEnv::File(const std::string& name) const {
  if (files == nullptr) return kEmptyBlob;
  auto it = files->find(name);
  return it == files->end() ? kEmptyBlob : it->second;
}

bool InvocationEnv::HasFile(const std::string& name) const {
  return files != nullptr && files->contains(name);
}

FunctionRegistry& FunctionRegistry::Global() {
  static FunctionRegistry registry;
  return registry;
}

Status FunctionRegistry::RegisterFunction(FunctionDef def) {
  if (def.name.empty()) return InvalidArgumentError("function name empty");
  if (!def.fn) return InvalidArgumentError("function body empty");
  const std::string name = def.name;
  std::lock_guard<std::mutex> lock(mu_);
  auto [_, inserted] = functions_.emplace(name, std::move(def));
  if (!inserted)
    return AlreadyExistsError("function already registered: " + name);
  return Status::Ok();
}

Status FunctionRegistry::RegisterSetup(ContextSetupDef def) {
  if (def.name.empty()) return InvalidArgumentError("setup name empty");
  if (!def.fn) return InvalidArgumentError("setup body empty");
  const std::string name = def.name;
  std::lock_guard<std::mutex> lock(mu_);
  auto [_, inserted] = setups_.emplace(name, std::move(def));
  if (!inserted)
    return AlreadyExistsError("setup already registered: " + name);
  return Status::Ok();
}

Result<FunctionDef> FunctionRegistry::FindFunction(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = functions_.find(name);
  if (it == functions_.end())
    return NotFoundError("function not registered: " + name);
  return it->second;
}

Result<ContextSetupDef> FunctionRegistry::FindSetup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = setups_.find(name);
  if (it == setups_.end())
    return NotFoundError("setup not registered: " + name);
  return it->second;
}

bool FunctionRegistry::HasFunction(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return functions_.contains(name);
}

std::vector<std::string> FunctionRegistry::FunctionNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& [name, _] : functions_) names.push_back(name);
  return names;
}

Result<std::vector<std::string>> FunctionRegistry::ImportsOf(
    const std::vector<std::string>& names) const {
  std::set<std::string> imports;
  std::set<std::string> setups_seen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& name : names) {
      auto it = functions_.find(name);
      if (it == functions_.end())
        return NotFoundError("function not registered: " + name);
      imports.insert(it->second.imports.begin(), it->second.imports.end());
      if (!it->second.setup_name.empty())
        setups_seen.insert(it->second.setup_name);
    }
    for (const auto& setup_name : setups_seen) {
      auto it = setups_.find(setup_name);
      if (it == setups_.end())
        return NotFoundError("setup not registered: " + setup_name);
      imports.insert(it->second.imports.begin(), it->second.imports.end());
    }
  }
  return std::vector<std::string>(imports.begin(), imports.end());
}

Blob SerializedFunction::Serialize(const std::string& name,
                                   const Value& closure,
                                   std::size_t code_size) {
  // Code payload: deterministic pseudo-bytes derived from the name, so the
  // blob is content-addressable and reproducible across processes.
  ByteBuffer code;
  code.Reserve(code_size);
  hash::Sha256::Digest seed = hash::Sha256::Hash(name);
  std::size_t cursor = 0;
  while (code.size() < code_size) {
    code.AppendByte(seed[cursor % seed.size()]);
    if (++cursor % seed.size() == 0) {
      seed = hash::Sha256::Hash(
          std::span<const std::uint8_t>(seed.data(), seed.size()));
    }
  }

  ArchiveWriter writer;
  writer.WriteString(std::string(kFunctionMagic));
  writer.WriteString(name);
  closure.Encode(writer);
  writer.WriteBytes(code.span());
  // Integrity checksum over everything so far; deserialization verifies it.
  const auto digest = hash::Sha256::Hash(writer.buffer().span());
  writer.WriteBytes(std::span<const std::uint8_t>(digest.data(), digest.size()));
  return std::move(writer).ToBlob();
}

Result<SerializedFunction> SerializedFunction::Deserialize(const Blob& blob) {
  ArchiveReader reader(blob);
  auto magic = reader.ReadString();
  if (!magic.ok()) return magic.status();
  if (*magic != kFunctionMagic)
    return DataLossError("bad serialized-function magic");
  auto name = reader.ReadString();
  if (!name.ok()) return name.status();
  auto closure = Value::Decode(reader);
  if (!closure.ok()) return closure.status();
  auto code = reader.ReadBytes();
  if (!code.ok()) return code.status();

  // Verify the checksum over the prefix (everything before the checksum).
  const std::size_t prefix_len = blob.size() - reader.remaining();
  auto checksum = reader.ReadBytes();
  if (!checksum.ok()) return checksum.status();
  const auto expected =
      hash::Sha256::Hash(blob.span().subspan(0, prefix_len));
  if (checksum->size() != expected.size() ||
      !std::equal(checksum->begin(), checksum->end(), expected.begin()))
    return DataLossError("serialized-function checksum mismatch");

  SerializedFunction out;
  out.name_ = std::move(*name);
  out.closure_ = std::move(*closure);
  out.code_size_ = code->size();
  return out;
}

}  // namespace vinelet::serde
