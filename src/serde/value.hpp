// Value: a dynamically-typed datum, the argument/result type of every
// function invocation.
//
// Vinelet functions are the C++ analog of the paper's Python functions:
// invocations "only need to bring along the input arguments" (§2.1.4), and
// those arguments must survive serialization across the (real or simulated)
// network.  Value is the closed universe of what can cross the wire:
// null, bool, int, float, string, bytes, list, dict.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "serde/archive.hpp"

namespace vinelet::serde {

class Value;

using ValueList = std::vector<Value>;
using ValueDict = std::map<std::string, Value>;

class Value {
 public:
  enum class Type : std::uint8_t {
    kNull = 0,
    kBool,
    kInt,
    kFloat,
    kString,
    kBytes,
    kList,
    kDict,
  };

  Value() : rep_(std::monostate{}) {}
  Value(bool b) : rep_(b) {}                      // NOLINT: implicit by design
  Value(std::int64_t i) : rep_(i) {}              // NOLINT
  Value(int i) : rep_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(double d) : rep_(d) {}                    // NOLINT
  Value(std::string s) : rep_(std::move(s)) {}    // NOLINT
  Value(const char* s) : rep_(std::string(s)) {}  // NOLINT
  Value(Blob bytes) : rep_(std::move(bytes)) {}   // NOLINT
  Value(ValueList list) : rep_(std::move(list)) {}  // NOLINT
  Value(ValueDict dict) : rep_(std::move(dict)) {}  // NOLINT

  static Value Null() { return Value(); }
  static Value List(ValueList items = {}) { return Value(std::move(items)); }
  static Value Dict(ValueDict items = {}) { return Value(std::move(items)); }

  Type type() const noexcept { return static_cast<Type>(rep_.index()); }
  bool is_null() const noexcept { return type() == Type::kNull; }

  // Checked accessors: abort on type mismatch (programming error),
  // mirroring std::get semantics.
  bool AsBool() const { return std::get<bool>(rep_); }
  std::int64_t AsInt() const { return std::get<std::int64_t>(rep_); }
  double AsFloat() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  const Blob& AsBytes() const { return std::get<Blob>(rep_); }
  const ValueList& AsList() const { return std::get<ValueList>(rep_); }
  ValueList& AsList() { return std::get<ValueList>(rep_); }
  const ValueDict& AsDict() const { return std::get<ValueDict>(rep_); }
  ValueDict& AsDict() { return std::get<ValueDict>(rep_); }

  /// Int-or-float as double; aborts on other types.
  double AsNumber() const {
    if (type() == Type::kInt) return static_cast<double>(AsInt());
    return AsFloat();
  }

  /// Dict lookup; returns Null for a missing key or non-dict value.
  const Value& Get(const std::string& key) const;

  /// Fallible typed dict lookups used when decoding wire payloads.
  Result<std::int64_t> GetInt(const std::string& key) const;
  Result<double> GetNumber(const std::string& key) const;
  Result<std::string> GetString(const std::string& key) const;

  void Encode(ArchiveWriter& writer) const;
  static Result<Value> Decode(ArchiveReader& reader);

  /// Serializes to a standalone blob / parses a standalone blob.
  Blob ToBlob() const;
  static Result<Value> FromBlob(const Blob& blob);

  /// JSON-ish rendering for logs and reports (bytes shown as <N bytes>).
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b);

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string, Blob,
               ValueList, ValueDict>
      rep_;
};

}  // namespace vinelet::serde
