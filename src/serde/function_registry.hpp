// Functions as first-class, shippable objects.
//
// Python workflow systems ship functions either as extracted source code or
// as a cloudpickle blob (paper §3.2, "Function code").  C++ cannot ship
// machine code at runtime, so vinelet models both paths faithfully:
//
//  * the *named* path — the function is registered under a stable name in a
//    registry compiled into both manager and worker, and only the name
//    travels (the analog of shipping source that the worker "simply invokes
//    by name");
//  * the *serialized* path — a SerializedFunction blob carries the registry
//    name, a captured closure Value (the analog of pickled cell variables),
//    and the opaque code bytes, which the worker must parse and validate
//    before the function is callable.  Lambdas-with-captures map onto this.
//
// A function may name a companion *context setup* function (paper Fig 4)
// whose job is to build the reusable in-memory environment once per library.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "serde/value.hpp"

namespace vinelet::serde {

/// Opaque in-memory environment built by a context-setup function and
/// retained by a library between invocations (the paper's "reusable function
/// context" materialized in memory).
class FunctionContext {
 public:
  virtual ~FunctionContext() = default;

  /// Bytes of worker memory this context occupies while retained; the worker
  /// accounts for it (paper §2.1.3: "a worker must be able to account for
  /// such resource occupation").
  virtual std::uint64_t MemoryBytes() const { return 0; }
};

using ContextHandle = std::shared_ptr<FunctionContext>;

/// Everything a function body may touch besides its arguments.
struct InvocationEnv {
  /// Input files staged into the invocation's sandbox, keyed by the name
  /// they were declared under (data-to-invocation binding, §2.2.1).
  const std::map<std::string, Blob>* files = nullptr;

  /// Retained context, or nullptr when running without one (L1/L2): the
  /// function must then rebuild any state it needs from `files`.
  FunctionContext* context = nullptr;

  /// Captured closure for functions shipped via the serialized path;
  /// Null for named functions.
  const Value* closure = nullptr;

  /// Invocation sandbox identifier (a directory in the real runtime).
  std::string sandbox;

  const Blob& File(const std::string& name) const;
  bool HasFile(const std::string& name) const;
};

using FunctionFn =
    std::function<Result<Value>(const Value& args, const InvocationEnv& env)>;

/// Builds the retained context.  Runs once per library instance, on the
/// worker, after input files have been staged.
using ContextSetupFn = std::function<Result<ContextHandle>(
    const Value& args, const InvocationEnv& env)>;

/// A registered function: name, body, optional setup, declared imports.
struct FunctionDef {
  std::string name;
  FunctionFn fn;

  /// Name of the companion context-setup function ("" = none).
  std::string setup_name;

  /// Module names this function imports — the input to poncho's dependency
  /// scan (the analog of walking the AST for import statements).
  std::vector<std::string> imports;
};

struct ContextSetupDef {
  std::string name;
  ContextSetupFn fn;
  std::vector<std::string> imports;
};

/// Thread-safe name → definition table, present on manager and workers alike
/// (the "interpreter" both sides share).
class FunctionRegistry {
 public:
  FunctionRegistry() = default;
  FunctionRegistry(const FunctionRegistry&) = delete;
  FunctionRegistry& operator=(const FunctionRegistry&) = delete;

  /// Process-wide registry used by the real runtime.
  static FunctionRegistry& Global();

  Status RegisterFunction(FunctionDef def);
  Status RegisterSetup(ContextSetupDef def);

  Result<FunctionDef> FindFunction(const std::string& name) const;
  Result<ContextSetupDef> FindSetup(const std::string& name) const;
  bool HasFunction(const std::string& name) const;

  std::vector<std::string> FunctionNames() const;

  /// Union of the imports of `names` (functions and their setups) — the
  /// discover step's dependency set.
  Result<std::vector<std::string>> ImportsOf(
      const std::vector<std::string>& names) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, FunctionDef> functions_;
  std::map<std::string, ContextSetupDef> setups_;
};

/// A function in transit: what the discover mechanism puts into the context
/// package.  `code` is the opaque payload a worker must deserialize; its
/// size models the pickled-code size.
class SerializedFunction {
 public:
  /// Serializes a registered function with an optional captured closure.
  /// `code_size` pads the code payload to model real pickled-function sizes.
  static Blob Serialize(const std::string& name, const Value& closure = {},
                        std::size_t code_size = 256);

  /// Parses and validates a serialized-function blob (checksum verified, the
  /// analog of unpickling raising on corrupt input).
  static Result<SerializedFunction> Deserialize(const Blob& blob);

  const std::string& name() const noexcept { return name_; }
  const Value& closure() const noexcept { return closure_; }
  std::size_t code_size() const noexcept { return code_size_; }

 private:
  std::string name_;
  Value closure_;
  std::size_t code_size_ = 0;
};

}  // namespace vinelet::serde
