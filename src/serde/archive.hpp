// Binary serialization archive.
//
// All wire payloads in vinelet (invocation arguments, results, protocol
// messages, environment indices) are encoded with this archive: little-endian
// fixed-width integers, length-prefixed byte strings, and varint-free framing
// so that decoding cost is proportional to payload size.  Reads are fully
// bounds-checked and return Status instead of throwing: malformed payloads
// from a (simulated) faulty worker must surface as kDataLoss, not UB.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace vinelet::serde {

/// Append-only encoder.
class ArchiveWriter {
 public:
  /// Starts with a pooled backing store sized for a typical control message,
  /// so even encoders that never call Reserve draw from the BufferPool
  /// instead of growing a fresh vector through repeated small appends.
  ArchiveWriter() { buffer_.Reserve(kInitialCapacity); }

  /// Pre-sizes the backing buffer for `additional` more bytes.  Encode paths
  /// that know their payload size up front call this once instead of growing
  /// geometrically through many small appends.
  void Reserve(std::size_t additional) {
    buffer_.Reserve(buffer_.size() + additional);
  }

  void WriteU8(std::uint8_t value);
  void WriteU32(std::uint32_t value);
  void WriteU64(std::uint64_t value);
  void WriteI64(std::int64_t value);
  void WriteF64(double value);
  void WriteBool(bool value) { WriteU8(value ? 1 : 0); }
  void WriteString(std::string_view text);
  void WriteBytes(std::span<const std::uint8_t> bytes);

  const ByteBuffer& buffer() const noexcept { return buffer_; }
  ByteBuffer&& TakeBuffer() noexcept { return std::move(buffer_); }
  Blob ToBlob() && { return Blob(std::move(buffer_)); }
  std::size_t size() const noexcept { return buffer_.size(); }

 private:
  static constexpr std::size_t kInitialCapacity = 256;

  ByteBuffer buffer_;
};

/// Bounds-checked decoder over a borrowed byte span.
class ArchiveReader {
 public:
  explicit ArchiveReader(std::span<const std::uint8_t> data) : data_(data) {}
  /// Blob-backed reader: ReadBlob() can return zero-copy slices of `blob`.
  explicit ArchiveReader(const Blob& blob)
      : data_(blob.span()), backing_(blob) {}

  Result<std::uint8_t> ReadU8();
  Result<std::uint32_t> ReadU32();
  Result<std::uint64_t> ReadU64();
  Result<std::int64_t> ReadI64();
  Result<double> ReadF64();
  Result<bool> ReadBool();
  Result<std::string> ReadString();
  Result<std::vector<std::uint8_t>> ReadBytes();

  /// Reads a length-prefixed byte string as a Blob.  When the reader is
  /// backed by a Blob the result is a Slice sharing the backing payload
  /// (no copy); otherwise the bytes are copied.
  Result<Blob> ReadBlob();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool AtEnd() const noexcept { return pos_ == data_.size(); }

 private:
  Status Need(std::size_t bytes) const;

  std::span<const std::uint8_t> data_;
  Blob backing_;  // empty unless constructed from a Blob
  std::size_t pos_ = 0;
};

}  // namespace vinelet::serde
