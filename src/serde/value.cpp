#include "serde/value.hpp"

#include <cstdio>

namespace vinelet::serde {
namespace {
const Value kNullValue;
}  // namespace

const Value& Value::Get(const std::string& key) const {
  if (type() != Type::kDict) return kNullValue;
  const auto& dict = AsDict();
  auto it = dict.find(key);
  return it == dict.end() ? kNullValue : it->second;
}

Result<std::int64_t> Value::GetInt(const std::string& key) const {
  const Value& v = Get(key);
  if (v.type() != Type::kInt)
    return DataLossError("missing int field '" + key + "'");
  return v.AsInt();
}

Result<double> Value::GetNumber(const std::string& key) const {
  const Value& v = Get(key);
  if (v.type() != Type::kInt && v.type() != Type::kFloat)
    return DataLossError("missing numeric field '" + key + "'");
  return v.AsNumber();
}

Result<std::string> Value::GetString(const std::string& key) const {
  const Value& v = Get(key);
  if (v.type() != Type::kString)
    return DataLossError("missing string field '" + key + "'");
  return v.AsString();
}

void Value::Encode(ArchiveWriter& writer) const {
  writer.WriteU8(static_cast<std::uint8_t>(type()));
  switch (type()) {
    case Type::kNull:
      break;
    case Type::kBool:
      writer.WriteBool(AsBool());
      break;
    case Type::kInt:
      writer.WriteI64(AsInt());
      break;
    case Type::kFloat:
      writer.WriteF64(AsFloat());
      break;
    case Type::kString:
      writer.WriteString(AsString());
      break;
    case Type::kBytes:
      writer.WriteBytes(AsBytes().span());
      break;
    case Type::kList: {
      const auto& list = AsList();
      writer.WriteU64(list.size());
      for (const auto& item : list) item.Encode(writer);
      break;
    }
    case Type::kDict: {
      const auto& dict = AsDict();
      writer.WriteU64(dict.size());
      for (const auto& [key, item] : dict) {
        writer.WriteString(key);
        item.Encode(writer);
      }
      break;
    }
  }
}

Result<Value> Value::Decode(ArchiveReader& reader) {
  auto tag = reader.ReadU8();
  if (!tag.ok()) return tag.status();
  switch (static_cast<Type>(*tag)) {
    case Type::kNull:
      return Value();
    case Type::kBool: {
      auto v = reader.ReadBool();
      if (!v.ok()) return v.status();
      return Value(*v);
    }
    case Type::kInt: {
      auto v = reader.ReadI64();
      if (!v.ok()) return v.status();
      return Value(*v);
    }
    case Type::kFloat: {
      auto v = reader.ReadF64();
      if (!v.ok()) return v.status();
      return Value(*v);
    }
    case Type::kString: {
      auto v = reader.ReadString();
      if (!v.ok()) return v.status();
      return Value(std::move(*v));
    }
    case Type::kBytes: {
      auto v = reader.ReadBytes();
      if (!v.ok()) return v.status();
      return Value(Blob(std::move(*v)));
    }
    case Type::kList: {
      auto count = reader.ReadU64();
      if (!count.ok()) return count.status();
      // Guard against hostile lengths larger than the remaining payload.
      if (*count > reader.remaining())
        return DataLossError("list length exceeds payload");
      ValueList list;
      list.reserve(static_cast<std::size_t>(*count));
      for (std::uint64_t i = 0; i < *count; ++i) {
        auto item = Decode(reader);
        if (!item.ok()) return item.status();
        list.push_back(std::move(*item));
      }
      return Value(std::move(list));
    }
    case Type::kDict: {
      auto count = reader.ReadU64();
      if (!count.ok()) return count.status();
      if (*count > reader.remaining())
        return DataLossError("dict length exceeds payload");
      ValueDict dict;
      for (std::uint64_t i = 0; i < *count; ++i) {
        auto key = reader.ReadString();
        if (!key.ok()) return key.status();
        auto item = Decode(reader);
        if (!item.ok()) return item.status();
        dict.emplace(std::move(*key), std::move(*item));
      }
      return Value(std::move(dict));
    }
  }
  return DataLossError("unknown value tag " + std::to_string(*tag));
}

Blob Value::ToBlob() const {
  ArchiveWriter writer;
  Encode(writer);
  return std::move(writer).ToBlob();
}

Result<Value> Value::FromBlob(const Blob& blob) {
  ArchiveReader reader(blob);
  auto value = Decode(reader);
  if (!value.ok()) return value.status();
  if (!reader.AtEnd()) return DataLossError("trailing bytes after value");
  return value;
}

std::string Value::ToString() const {
  switch (type()) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return AsBool() ? "true" : "false";
    case Type::kInt:
      return std::to_string(AsInt());
    case Type::kFloat: {
      char out[32];
      std::snprintf(out, sizeof(out), "%g", AsFloat());
      return out;
    }
    case Type::kString: {
      std::string out = "\"";
      out += AsString();
      out += '"';
      return out;
    }
    case Type::kBytes: {
      std::string out = "<";
      out += std::to_string(AsBytes().size());
      out += " bytes>";
      return out;
    }
    case Type::kList: {
      std::string out = "[";
      const auto& list = AsList();
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (i) out += ", ";
        out += list[i].ToString();
      }
      return out + "]";
    }
    case Type::kDict: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, item] : AsDict()) {
        if (!first) out += ", ";
        first = false;
        out += "\"" + key + "\": " + item.ToString();
      }
      return out + "}";
    }
  }
  return "?";
}

bool operator==(const Value& a, const Value& b) { return a.rep_ == b.rep_; }

}  // namespace vinelet::serde
